"""YAGS — *Yet Another Global Scheme* (Eden & Mudge, MICRO-31 1998).

A natural extension of the bi-mode idea from the same research group,
implemented here as one of the "future directions" the paper's
conclusion points toward: instead of two *full-size* direction banks,
YAGS keeps the bimodal choice table as the main predictor and stores
only the *exceptions* — the (branch, history) cases that disagree with
the branch's bias — in two small tagged direction caches (a T-cache for
not-taken-biased branches that sometimes take, and an NT-cache for the
converse).

Prediction: the choice table supplies the bias.  The cache for the
*opposite* direction is probed with the gshare index; on a partial-tag
hit its counter overrides the bias, otherwise the bias is used.

Update: the probed cache entry trains (and allocates, with tag
replacement) only when the outcome disagrees with the bias or the entry
already hit; the choice table trains as a normal bimodal table except
it is not decremented (incremented) when its direction was overridden
correctly — mirroring the bi-mode choice predictor's partial update.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import WEAKLY_NOT_TAKEN, WEAKLY_TAKEN, CounterTable
from repro.core.history import GlobalHistoryRegister
from repro.core.indexing import gshare_index, mask
from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.traces.record import BranchTrace

__all__ = ["YagsPredictor"]


class _TaggedCache:
    """Direct-mapped cache of (partial tag, 2-bit counter) entries."""

    __slots__ = ("index_bits", "tag_bits", "_tag_mask", "tags", "counters", "init")

    def __init__(self, index_bits: int, tag_bits: int, init: int):
        self.index_bits = index_bits
        self.tag_bits = tag_bits
        self._tag_mask = mask(tag_bits)
        self.init = init
        size = 1 << index_bits
        self.tags = [-1] * size  # -1 = invalid
        self.counters = [init] * size

    def tag_of(self, pc: int) -> int:
        return (pc >> self.index_bits) & self._tag_mask

    def lookup(self, index: int, tag: int):
        """Counter state on hit, else ``None``."""
        if self.tags[index] == tag:
            return self.counters[index]
        return None

    def train(self, index: int, tag: int, taken: bool) -> None:
        """Train on hit; allocate (replacing the resident tag) on miss."""
        if self.tags[index] != tag:
            self.tags[index] = tag
            self.counters[index] = WEAKLY_TAKEN if taken else WEAKLY_NOT_TAKEN
            return
        state = self.counters[index]
        if taken:
            if state < 3:
                self.counters[index] = state + 1
        elif state > 0:
            self.counters[index] = state - 1

    def reset(self) -> None:
        self.tags = [-1] * len(self.tags)
        self.counters = [self.init] * len(self.counters)

    def size_bits(self) -> int:
        """Counter + tag storage."""
        return len(self.tags) * (2 + self.tag_bits)


class YagsPredictor(BranchPredictor):
    """YAGS with partial tags.

    Parameters
    ----------
    choice_index_bits:
        log2 of the bimodal choice table size.
    cache_index_bits:
        log2 of each direction cache's size.
    history_bits:
        Global history length for the cache gshare index.  Defaults to
        ``cache_index_bits``.
    tag_bits:
        Partial tag width (6–8 bits typical; default 6).
    """

    scheme = "yags"

    def __init__(
        self,
        choice_index_bits: int,
        cache_index_bits: int,
        history_bits: int | None = None,
        tag_bits: int = 6,
    ):
        if choice_index_bits < 0:
            raise ValueError(f"choice_index_bits must be >= 0, got {choice_index_bits}")
        if cache_index_bits < 0:
            raise ValueError(f"cache_index_bits must be >= 0, got {cache_index_bits}")
        if history_bits is None:
            history_bits = cache_index_bits
        if not 0 <= history_bits <= cache_index_bits:
            raise ValueError(
                f"history_bits ({history_bits}) must be in [0, {cache_index_bits}]"
            )
        if tag_bits < 1:
            raise ValueError(f"tag_bits must be >= 1, got {tag_bits}")
        self.choice_index_bits = choice_index_bits
        self.cache_index_bits = cache_index_bits
        self.history_bits = history_bits
        self.tag_bits = tag_bits
        self.choice = CounterTable(choice_index_bits, init=WEAKLY_TAKEN)
        self.taken_cache = _TaggedCache(cache_index_bits, tag_bits, WEAKLY_TAKEN)
        self.not_taken_cache = _TaggedCache(
            cache_index_bits, tag_bits, WEAKLY_NOT_TAKEN
        )
        self.ghr = GlobalHistoryRegister(history_bits)
        self._choice_mask = mask(choice_index_bits)

    @property
    def name(self) -> str:
        return (
            f"yags:choice=2^{self.choice_index_bits},"
            f"caches=2x2^{self.cache_index_bits},hist={self.history_bits},"
            f"tag={self.tag_bits}"
        )

    def size_bits(self) -> int:
        return (
            self.choice.size_bits()
            + self.taken_cache.size_bits()
            + self.not_taken_cache.size_bits()
        )

    def reset(self) -> None:
        self.choice.reset()
        self.taken_cache.reset()
        self.not_taken_cache.reset()
        self.ghr.reset()

    # -- internals ----------------------------------------------------------------

    def _cache_index(self, pc: int) -> int:
        return gshare_index(pc, self.ghr.value, self.cache_index_bits, self.history_bits)

    def _probe(self, pc: int):
        """Returns (bias, cache, cache_index, tag, hit_state_or_None)."""
        bias = self.choice.predict(pc & self._choice_mask)
        # exceptions to a taken bias live in the NOT-taken cache and vice versa
        cache = self.not_taken_cache if bias else self.taken_cache
        index = self._cache_index(pc)
        tag = cache.tag_of(pc)
        return bias, cache, index, tag, cache.lookup(index, tag)

    # -- step interface ---------------------------------------------------------------

    def predict(self, pc: int) -> bool:
        bias, _cache, _index, _tag, hit = self._probe(pc)
        if hit is None:
            return bias
        return hit >= 2

    def update(self, pc: int, taken: bool) -> None:
        bias, cache, index, tag, hit = self._probe(pc)
        final = bias if hit is None else hit >= 2

        # train/allocate the exception cache when the branch deviates
        # from its bias, or keep training a resident entry
        if taken != bias or hit is not None:
            cache.train(index, tag, taken)

        # choice table: bimodal update, but (like bi-mode) leave it
        # alone when it was wrong yet the override got it right
        if not (bias != taken and final == taken):
            self.choice.update(pc & self._choice_mask, taken)

        self.ghr.push(taken)

    # -- batch interface ---------------------------------------------------------------

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        """Counter-id layout: the choice table first, then the taken
        cache, then the not-taken cache.  A cache hit attributes the
        prediction to the hitting cache entry; a miss to the choice
        counter that supplied the bias."""
        n = len(trace)
        predictions = np.empty(n, dtype=bool)
        counter_ids = np.empty(n, dtype=np.int64)
        choice_size = self.choice.size
        cache_size = 1 << self.cache_index_bits
        choice_mask = self._choice_mask

        for i, (pc, taken) in enumerate(
            zip(trace.pcs.tolist(), trace.outcomes.tolist())
        ):
            bias, _cache, index, _tag, hit = self._probe(pc)
            if hit is None:
                counter_ids[i] = pc & choice_mask
                predictions[i] = bias
            else:
                # a taken bias probes the NOT-taken cache and vice versa
                offset = choice_size + (cache_size if bias else 0)
                counter_ids[i] = offset + index
                predictions[i] = hit >= 2
            self.update(pc, taken)

        result = SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )
        return DetailedSimulation(
            result=result,
            counter_ids=counter_ids,
            num_counters=choice_size + 2 * cache_size,
            pcs=trace.pcs,
        )
