"""Unit tests for the trace containers."""

import numpy as np
import pytest

from repro.traces.record import BranchRecord, BranchTrace


def simple_trace():
    return BranchTrace(
        pcs=np.array([4, 8, 4, 12, 4]),
        outcomes=np.array([True, False, True, True, False]),
        name="t",
    )


class TestBranchRecord:
    def test_fields(self):
        r = BranchRecord(pc=100, taken=True)
        assert (r.pc, r.taken) == (100, True)

    def test_unpacking(self):
        pc, taken = BranchRecord(pc=4, taken=False)
        assert (pc, taken) == (4, False)


class TestBranchTrace:
    def test_lengths_must_match(self):
        with pytest.raises(ValueError):
            BranchTrace(pcs=np.array([1, 2]), outcomes=np.array([True]))

    def test_negative_pcs_rejected(self):
        with pytest.raises(ValueError):
            BranchTrace(pcs=np.array([-1]), outcomes=np.array([True]))

    def test_multidim_rejected(self):
        with pytest.raises(ValueError):
            BranchTrace(pcs=np.zeros((2, 2)), outcomes=np.zeros(4, dtype=bool))

    def test_len_and_counts(self):
        t = simple_trace()
        assert len(t) == 5
        assert t.num_dynamic == 5
        assert t.num_static == 3

    def test_static_branches_sorted(self):
        assert simple_trace().static_branches().tolist() == [4, 8, 12]

    def test_taken_rate(self):
        assert simple_trace().taken_rate == pytest.approx(0.6)

    def test_empty(self):
        t = BranchTrace.empty("e")
        assert len(t) == 0
        assert t.taken_rate == 0.0
        assert t.num_static == 0

    def test_indexing_returns_record(self):
        r = simple_trace()[1]
        assert isinstance(r, BranchRecord)
        assert (r.pc, r.taken) == (8, False)

    def test_slicing_returns_trace(self):
        t = simple_trace()[1:3]
        assert isinstance(t, BranchTrace)
        assert t.pcs.tolist() == [8, 4]

    def test_iteration(self):
        records = list(simple_trace())
        assert len(records) == 5
        assert records[0] == BranchRecord(pc=4, taken=True)

    def test_from_records(self):
        t = BranchTrace.from_records([(4, True), (8, False)], name="x")
        assert t.pcs.tolist() == [4, 8]
        assert t.outcomes.tolist() == [True, False]
        assert t.name == "x"

    def test_from_branch_records(self):
        t = BranchTrace.from_records([BranchRecord(2, True)])
        assert len(t) == 1

    def test_concat(self):
        a = simple_trace()
        b = simple_trace()
        c = a.concat(b, name="ab")
        assert len(c) == 10
        assert c.name == "ab"

    def test_equality(self):
        assert simple_trace() == simple_trace()
        other = simple_trace()
        other.outcomes[0] = False
        assert simple_trace() != other

    def test_outcome_dtype_coerced_to_bool(self):
        t = BranchTrace(pcs=np.array([1, 2]), outcomes=np.array([1, 0]))
        assert t.outcomes.dtype == bool
