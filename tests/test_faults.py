"""Unit tests for the deterministic fault-injection harness."""

import os
import signal

import pytest

from repro import faults
from repro.faults import FaultInjected, FaultRule, fault_point, parse_faults


class TestParsing:
    def test_site_and_action(self):
        (rule,) = parse_faults("worker:raise")
        assert rule == FaultRule(site="worker", action="raise")

    def test_all_options(self):
        (rule,) = parse_faults("evaluate:sleep:nth=3,bench=gcc,where=worker,seconds=0.25")
        assert rule.nth == 3
        assert rule.bench == "gcc"
        assert rule.where == "worker"
        assert rule.seconds == 0.25

    def test_multiple_directives(self):
        rules = parse_faults("worker:exit:bench=gcc; evaluate:raise:nth=2")
        assert [r.site for r in rules] == ["worker", "evaluate"]

    def test_empty_spec_is_empty(self):
        assert parse_faults("") == []
        assert parse_faults(" ; ") == []

    @pytest.mark.parametrize(
        "spec",
        [
            "worker",  # no action
            "worker:detonate",  # unknown action
            "worker:raise:nth=0",  # nth must be >= 1
            "worker:raise:where=elsewhere",
            "worker:raise:frobnicate=1",
            "worker:raise:nth",  # option without value
            "a:b:c:d",  # too many fields
        ],
    )
    def test_junk_raises(self, spec):
        with pytest.raises(ValueError):
            parse_faults(spec)


class TestFaultPoint:
    def test_unarmed_is_noop(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        fault_point("worker", bench="gcc")  # must not raise

    def test_raise_action(self):
        with faults.inject("worker:raise"):
            with pytest.raises(FaultInjected):
                fault_point("worker")

    def test_site_mismatch_does_not_fire(self):
        with faults.inject("worker:raise"):
            fault_point("evaluate")

    def test_bench_filter(self):
        with faults.inject("worker:raise:bench=gcc"):
            fault_point("worker", bench="xlisp")
            with pytest.raises(FaultInjected):
                fault_point("worker", bench="gcc")

    def test_nth_fires_only_on_that_hit(self):
        with faults.inject("worker:raise:nth=3"):
            fault_point("worker")
            fault_point("worker")
            with pytest.raises(FaultInjected):
                fault_point("worker")
            fault_point("worker")  # counter moved past nth

    def test_inject_reenter_resets_counters(self):
        with faults.inject("worker:raise:nth=2"):
            fault_point("worker")
        with faults.inject("worker:raise:nth=2"):
            fault_point("worker")  # first hit again, not second
            with pytest.raises(FaultInjected):
                fault_point("worker")

    def test_inject_restores_environment(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker:raise:nth=99")
        with faults.inject("worker:raise"):
            assert os.environ[faults.ENV_VAR] == "worker:raise"
        assert os.environ[faults.ENV_VAR] == "worker:raise:nth=99"

    def test_inject_rejects_junk_before_arming(self):
        with pytest.raises(ValueError):
            with faults.inject("worker:detonate"):
                pass

    def test_where_worker_does_not_fire_in_parent(self):
        with faults.inject("worker:raise:where=worker"):
            fault_point("worker")  # this test runs in the parent

    def test_where_parent_fires_in_parent(self):
        with faults.inject("worker:raise:where=parent"):
            with pytest.raises(FaultInjected):
                fault_point("worker")

    def test_exit_never_kills_the_parent(self):
        with faults.inject("worker:exit"):
            fault_point("worker")  # would have killed pytest otherwise

    def test_sleep_action(self):
        import time

        with faults.inject("worker:sleep:seconds=0.01"):
            start = time.monotonic()
            fault_point("worker")
            assert time.monotonic() - start >= 0.01

    def test_sigint_action(self):
        previous = signal.signal(signal.SIGINT, signal.default_int_handler)
        try:
            with faults.inject("worker:sigint"):
                with pytest.raises(KeyboardInterrupt):
                    fault_point("worker")
        finally:
            signal.signal(signal.SIGINT, previous)


class TestTracing:
    def test_counts_by_site_and_bench(self, tmp_path):
        with faults.traced(tmp_path):
            fault_point("evaluate", bench="gcc", cells=3)
            fault_point("evaluate", bench="gcc", cells=2)
            fault_point("evaluate", bench="xlisp")
            fault_point("worker", bench="gcc")
        counts = faults.trace_counts(tmp_path)
        assert counts[("evaluate", "gcc")] == 2
        assert counts[("evaluate", "xlisp")] == 1
        assert counts[("worker", "gcc")] == 1

    def test_site_filter(self, tmp_path):
        with faults.traced(tmp_path):
            fault_point("evaluate", bench="gcc")
            fault_point("worker", bench="gcc")
        assert faults.trace_counts(tmp_path, site="worker") == {("worker", "gcc"): 1}

    def test_missing_dir_is_empty(self, tmp_path):
        assert faults.trace_counts(tmp_path / "nope") == {}


class TestHelpers:
    def test_corrupt_cache_file(self, tmp_path):
        from repro.sim.runner import ResultCache

        cache = ResultCache(tmp_path)
        cache.put("spec", "tkey", 0.5)
        path = faults.corrupt_cache_file(cache, "tkey")
        assert path.read_text().startswith("{corrupt")
        assert cache.get("spec", "tkey") is None  # reload sees the corruption

    def test_deny_compiler(self, monkeypatch):
        from repro.sim import _cstep

        monkeypatch.delenv("REPRO_NO_CC", raising=False)
        with faults.deny_compiler():
            assert not _cstep.available()
            assert _cstep.unavailable_reason() == "REPRO_NO_CC is set"
        assert os.environ.get("REPRO_NO_CC") is None
