"""Synthetic workload substrate standing in for the paper's IBS/SPEC traces."""

from repro.workloads.capture import branch_populations, estimate_profile
from repro.workloads.cfg import BranchSite, Program, Region, zipf_weights
from repro.workloads.components import (
    BiasedBehavior,
    BranchBehavior,
    CorrelatedBehavior,
    LoopBehavior,
    PatternBehavior,
)
from repro.workloads.generator import KERNEL_BASE, build_program, generate_trace
from repro.workloads.profiles import (
    ALL_PROFILES,
    CINT95_PROFILES,
    IBS_PROFILES,
    BehaviorMix,
    BenchmarkProfile,
    get_profile,
)
from repro.workloads.suite import (
    cint95_suite,
    default_cache_dir,
    ibs_suite,
    load_benchmark,
    load_suite,
    suite_names,
)

__all__ = [
    "ALL_PROFILES",
    "BehaviorMix",
    "BenchmarkProfile",
    "BiasedBehavior",
    "BranchBehavior",
    "BranchSite",
    "CINT95_PROFILES",
    "CorrelatedBehavior",
    "IBS_PROFILES",
    "KERNEL_BASE",
    "LoopBehavior",
    "PatternBehavior",
    "Program",
    "Region",
    "branch_populations",
    "build_program",
    "estimate_profile",
    "cint95_suite",
    "default_cache_dir",
    "generate_trace",
    "get_profile",
    "ibs_suite",
    "load_benchmark",
    "load_suite",
    "suite_names",
    "zipf_weights",
]
