"""Unit tests for the gskewed predictor."""

import numpy as np
import pytest

from repro.predictors.gskew import GSkewPredictor, _rotate
from repro.sim.engine import run, run_steps
from tests.conftest import make_toy_trace


class TestRotate:
    def test_identity(self):
        assert _rotate(0b1011, 0, 4) == 0b1011

    def test_left_rotation(self):
        assert _rotate(0b1001, 1, 4) == 0b0011

    def test_wraps_modulo_width(self):
        assert _rotate(0b1001, 5, 4) == _rotate(0b1001, 1, 4)

    def test_zero_width(self):
        assert _rotate(0b1, 3, 0) == 0

    def test_is_bijective(self):
        seen = {_rotate(v, 3, 6) for v in range(64)}
        assert len(seen) == 64


class TestGSkew:
    def test_three_banks(self):
        p = GSkewPredictor(bank_index_bits=6)
        assert len(p.banks) == 3
        assert p.size_bits() == 3 * 64 * 2

    def test_banks_use_different_indices(self):
        p = GSkewPredictor(bank_index_bits=6, history_bits=6)
        p.ghr.push(True)
        p.ghr.push(False)
        indices = p._indices(0b101101)
        assert len(set(indices)) >= 2  # decorrelated for a generic input

    def test_majority_vote(self):
        p = GSkewPredictor(bank_index_bits=4, history_bits=0)
        i0, i1, i2 = p._indices(7)
        # two banks say not-taken, one says taken -> not taken
        p.banks[0].fill([0] * 16)
        p.banks[1].fill([0] * 16)
        assert p.predict(7) is False

    def test_learns_biased_branch(self):
        p = GSkewPredictor(bank_index_bits=5)
        misses = sum(not p.predict_and_update(9, True) for _ in range(50))
        assert misses == 0

    def test_enhanced_update_spares_dissenting_bank_when_correct(self):
        p = GSkewPredictor(bank_index_bits=4, history_bits=0, update_policy="enhanced")
        i0, i1, i2 = p._indices(7)
        p.banks[2].states[i2] = 0  # dissenter predicts not-taken
        p.update(7, True)  # majority taken, outcome taken
        assert p.banks[2].states[i2] == 0  # dissenting bank untouched
        assert p.banks[0].states[i0] == 3
        assert p.banks[1].states[i1] == 3

    def test_total_update_trains_everyone(self):
        p = GSkewPredictor(bank_index_bits=4, history_bits=0, update_policy="total")
        i0, i1, i2 = p._indices(7)
        p.banks[2].states[i2] = 0
        p.update(7, True)
        assert p.banks[2].states[i2] == 1

    def test_misprediction_trains_all_banks_even_enhanced(self):
        p = GSkewPredictor(bank_index_bits=4, history_bits=0, update_policy="enhanced")
        i0, i1, i2 = p._indices(7)
        # everyone predicts taken, outcome not-taken: all train
        p.update(7, False)
        assert p.banks[0].states[i0] == 1
        assert p.banks[1].states[i1] == 1
        assert p.banks[2].states[i2] == 1

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            GSkewPredictor(bank_index_bits=4, update_policy="sometimes")

    def test_batch_equals_step(self):
        trace = make_toy_trace(length=800)
        for policy in ("enhanced", "total"):
            batch = run(GSkewPredictor(7, 7, update_policy=policy), trace)
            steps = run_steps(GSkewPredictor(7, 7, update_policy=policy), trace)
            assert np.array_equal(batch.predictions, steps.predictions)

    def test_reset(self):
        trace = make_toy_trace(length=300)
        p = GSkewPredictor(6)
        a = run(p, trace).predictions
        b = run(p, trace).predictions
        assert np.array_equal(a, b)
