"""Measure the detailed-registry speedup on the Section-4 sweeps.

One measurement wave: a cold scalar-pin vs registry comparison of the
full detailed (Section-4 per-access attribution) pipeline over a
multi-scheme grid — one representative spec per detailed kernel
implementation (bimodal, the two-level family, agree, gskew,
tournament, tri-mode, YAGS, perceptron, the bias filter and the
statics) plus the fused gshare/bi-mode pair — across the CINT95 suite.

Engines:

* **scalar** — ``REPRO_DETAILED_KERNEL=scalar``: every cell through the
  per-branch ``simulate_detailed`` loop, the only Section-4 path the
  ported schemes had before their detailed kernels landed;
* **registry** — ``REPRO_DETAILED_KERNEL=auto``: ``detailed_matrix``
  groups the grid into per-scheme families and each family runs its
  batch attribution kernel (compiled sequential loops when a C compiler
  exists, counter-major numpy otherwise), sharing precomputed history
  streams within the family.

Cells are compact Section-4 summary dicts (per-class breakdown, bias
areas, aliasing/sharing, class changes) and are asserted **JSON-exact**
cell by cell — a kernel that predicts correctly but charges the wrong
counter fails the run.  Every spec is additionally replayed against the
dict-based oracle on a power-on prefix of its trace
(``$REPRO_KERNEL_ORACLE_N`` branches, default 20 000), comparing
predictions *and* per-access counter ids bit for bit.  Rows are
appended to ``results/sweep_speedup.csv`` under the ``detailed grid``
prefix; the summary lands in ``results/BENCH_detailed_registry.json``.

Not a pytest file on purpose — timing cold sweeps back-to-back is an
explicit measurement run::

    PYTHONPATH=src:. REPRO_BENCH_SCALE=0.1 python benchmarks/measure_detailed_registry.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import ascii_table, bench_scale, load_bench_suite, results_dir
from benchmarks.measure_kernel_registry import _append_speedup_rows, _env
from repro.core.registry import make_predictor
from repro.sim.engine import run_detailed
from repro.sim.fused import plan_families
from repro.sim.parallel import detailed_matrix
from repro.verify.oracle import oracle_detailed, oracle_supports_detailed

SPEEDUP_GATE = 5.0
PREFIX = "detailed grid"

#: One spec per detailed kernel implementation plus the fused pair —
#: every scheme family the planner can produce appears in the sweep.
GRID = [
    "gshare:index=10,hist=10",
    "bimode:dir=9,hist=9,choice=8",
    "bimodal:index=10",
    "pag:hist=6,bht=6",
    "gselect:hist=5,addr=5",
    "agree:index=10,hist=8,bias=10",
    "gskew:bank=8,hist=8",
    "tournament:index=9,meta=9",
    "trimode:dir=8,hist=6,choice=7",
    "yags:choice=9,cache=7,hist=7,tag=6",
    "perceptron:index=7,hist=10",
    "biasfilter:table=9,run=2,sub_index=9,sub_hist=7",
    "btfnt",
]


def measure_detailed_sweep():
    """Scalar-pin vs registry dispatch of the Section-4 grid.

    Returns ``(rows, summary, mismatches)`` in the shape of the other
    measurement scripts: CSV rows for ``sweep_speedup.csv``, the
    ``BENCH_detailed_registry.json`` payload, and the total count of
    diverging cells (0 required).
    """
    specs = list(GRID)
    traces = load_bench_suite("cint95")
    families = plan_families(specs)

    # Warm pass: one tiny registry evaluation pays the one-time C
    # driver build and imports outside the timed sweeps.
    warm = {"warm": next(iter(traces.values()))[:2_000]}
    with _env(REPRO_DETAILED_KERNEL=None, REPRO_KERNEL=None):
        detailed_matrix([specs[0], specs[-1]], warm, jobs=1)

    with _env(REPRO_DETAILED_KERNEL="scalar", REPRO_KERNEL=None):
        t0 = time.perf_counter()
        scalar = detailed_matrix(specs, traces, jobs=1)
        scalar_s = time.perf_counter() - t0

    with _env(REPRO_DETAILED_KERNEL=None, REPRO_KERNEL=None):
        t0 = time.perf_counter()
        registry = detailed_matrix(specs, traces, jobs=1)
        registry_s = time.perf_counter() - t0

    mismatches = 0
    for spec in specs:
        for bench in traces:
            want = json.dumps(scalar[spec][bench], sort_keys=True)
            got = json.dumps(registry[spec][bench], sort_keys=True)
            if want != got:
                mismatches += 1
                print(f"MISMATCH {spec} on {bench}: summaries differ")

    # Dict-based oracle, every spec, power-on prefix: predictions AND
    # per-access counter ids.
    oracle_n = int(os.environ.get("REPRO_KERNEL_ORACLE_N", "20000"))
    oracle_cells = oracle_mismatches = 0
    for bench, trace in traces.items():
        prefix = trace[:oracle_n]
        for spec in specs:
            assert oracle_supports_detailed(spec), spec
            o_preds, o_ids = oracle_detailed(spec, prefix)
            with _env(REPRO_DETAILED_KERNEL=None, REPRO_KERNEL=None):
                detailed = run_detailed(make_predictor(spec), prefix)
            oracle_cells += 1
            if not (
                np.array_equal(detailed.result.predictions, o_preds)
                and np.array_equal(detailed.counter_ids, o_ids)
            ):
                oracle_mismatches += 1
                print(f"MISMATCH oracle {spec} on {bench} (n={len(prefix)})")

    speedup = scalar_s / registry_s if registry_s else float("inf")
    verdict = "identical" if mismatches + oracle_mismatches == 0 else "DIVERGED"
    summary = {
        "what": "multi-scheme Section-4 grid (one spec per detailed "
                "kernel + fused gshare/bimode) x CINT95 suite: scalar "
                "simulate_detailed vs detailed kernel registry, "
                "summaries JSON-exact per cell",
        "suite": "cint95",
        "scale": bench_scale(),
        "specs": len(specs),
        "benches": len(traces),
        "cells": len(specs) * len(traces),
        "families": [
            {"kind": family.kind, "specs": len(family)} for family in families
        ],
        "scalar_s": round(scalar_s, 3),
        "registry_s": round(registry_s, 3),
        "speedup": round(speedup, 2),
        "gate": f">= {SPEEDUP_GATE}x, summaries JSON-exact per cell",
        "summaries_identical": mismatches == 0,
        "oracle": {
            "prefix_branches": oracle_n,
            "cells_checked": oracle_cells,
            "predictions_and_counter_ids_identical": oracle_mismatches == 0,
        },
    }
    rows = [
        [f"{PREFIX} scalar engine (REPRO_DETAILED_KERNEL=scalar)",
         f"{scalar_s:.2f}", "1.00x", verdict],
        [f"{PREFIX} detailed registry (REPRO_DETAILED_KERNEL=auto)",
         f"{registry_s:.2f}", f"{speedup:.2f}x", verdict],
    ]
    return rows, summary, mismatches + oracle_mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)
    rows, summary, mismatches = measure_detailed_sweep()
    print()
    print(ascii_table(
        ["path", "seconds", "speedup", "summaries"],
        rows,
        title="detailed registry: Section-4 grid sweep",
    ))
    path = _append_speedup_rows(rows, PREFIX)
    print(f"[appended to {path}]")
    bench_path = results_dir() / "BENCH_detailed_registry.json"
    bench_path.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"[written {bench_path}]")
    if mismatches:
        print(f"FAILED: {mismatches} diverging cell(s)")
        return 1
    if summary["speedup"] < SPEEDUP_GATE:
        print(f"BELOW TARGET: {summary['speedup']}x < {SPEEDUP_GATE}x")
        return 2
    print(f"OK: {summary['speedup']}x >= {SPEEDUP_GATE}x, all cells identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
