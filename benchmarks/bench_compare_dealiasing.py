"""Comparison — bi-mode vs the other de-aliasing proposals.

The paper's related-work section points to the agree predictor
[Sprangle97] and the (enhanced) gskew predictor [MichaudSeznecUhlig97],
deferring the head-to-head comparison to [Lee97], which found hardware
hashing (gskew) best for small budgets and bi-mode the most
cost-effective large-system scheme.  This bench runs that comparison on
the CINT95 suite at roughly matched counter budgets, including YAGS
(the follow-on design from the same group), a McFarling tournament, and
the two future-work extensions (marked *; not in the paper): tri-mode
(a third direction bank further separating the weakly-biased
substreams) and bias-filter (a per-address monotone-branch filter in
front of gshare, reducing the streams the tables must hold).

Budget matching (counters of direction/agree state, excluding the
agree bias bits and YAGS tags which are reported separately by the
predictors' size methods):

=============  =====================================
bi-mode        2 x 2^(n-1) direction + 2^(n-1) choice
gshare         2^n  (the 1PHT reference, smaller)
agree          2^n + bias bits
e-gskew        3 x 2^(n-1) counters (1.5 x 2^n)
YAGS           2^n choice + 2 x 2^(n-2) tagged caches
tournament     2 x 2^(n-1) components + 2^(n-1) meta
=============  =====================================

Expected shapes: every de-aliasing scheme beats plain gshare on the
aliasing-sensitive average; bi-mode is at or near the front.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_table, load_bench_suite, result_cache
from repro.core.registry import make_predictor
from repro.sim.runner import evaluate_matrix

SIZES = [10, 12, 14]  # 2^n reference counters


def _specs(n):
    return [
        ("gshare.1PHT", f"gshare:index={n},hist={n}"),
        ("bi-mode", f"bimode:dir={n - 1},hist={n - 1},choice={n - 1}"),
        ("agree", f"agree:index={n},hist={n}"),
        ("e-gskew", f"gskew:bank={n - 1},hist={n - 1}"),
        ("yags", f"yags:choice={n},cache={n - 2},hist={n - 2},tag=6"),
        ("tournament", f"tournament:index={n - 1},meta={n - 1}"),
        ("tri-mode*", f"trimode:dir={n - 1},hist={n - 1},choice={n - 1}"),
        ("bias-filter*", f"biasfilter:table={n},run=3,sub_index={n},sub_hist={n}"),
        # 2001-era lineage point: weights cost ~4x more bits per entry,
        # so the perceptron gets 1/4 the entries at a matched bit budget
        ("perceptron", f"perceptron:index={max(0, n - 4)},hist=12"),
    ]


def _run():
    """One fused-planner pass over the whole (size x scheme x bench)
    grid: every spec routes through its family kernel, so no scheme
    needs bench-local special-casing for speed."""
    traces = load_bench_suite("cint95")
    grid = [(n, label, spec) for n in SIZES for label, spec in _specs(n)]
    rates = evaluate_matrix(
        [spec for _, _, spec in grid], traces, cache=result_cache()
    )
    return {
        (n, label): (
            sum(rates[spec].values()) / len(rates[spec]),
            make_predictor(spec).size_bytes(),
        )
        for n, label, spec in grid
    }


@pytest.mark.benchmark(group="compare")
def test_compare_dealiasing_schemes(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    labels = [label for label, _ in _specs(10)]
    rows = []
    for n in SIZES:
        for label in labels:
            rate, nbytes = table[(n, label)]
            rows.append([f"2^{n}", label, f"{nbytes / 1024:.3g}KB", f"{100 * rate:.2f}%"])
    emit_table(
        "compare_dealiasing",
        "De-aliasing schemes at matched budgets (CINT95 average)",
        ["budget", "scheme", "true size", "misprediction"],
        rows,
    )

    for n in SIZES:
        gshare_rate = table[(n, "gshare.1PHT")][0]
        for label in ("bi-mode", "agree", "e-gskew"):
            assert table[(n, label)][0] < gshare_rate, (n, label)

    # bi-mode at or near the front at the largest budget: within 15% of
    # the best scheme's rate
    n = SIZES[-1]
    best = min(table[(n, label)][0] for label in labels if label != "gshare.1PHT")
    assert table[(n, "bi-mode")][0] <= best * 1.15
