"""Figure 8 — misprediction contributed by bias class, go.

Same experiment as Figure 7 on the go benchmark.  Paper shapes
(Section 4.4):

* go is WB-dominated: for every scheme and size, the WB class
  contributes the largest share of misprediction — destructive
  aliasing is *not* the main problem, so bi-mode has little room to
  improve on gshare here;
* the WB error falls as more history bits are used ("as more history
  bits are used, the relative misprediction due to the WB class
  becomes smaller").
"""

from __future__ import annotations

import pytest

from benchmarks.bench_fig7_gcc_breakdown import SIZES, compute_breakdowns
from benchmarks.common import emit_table, load_detailed_trace

BENCHMARK = "go"


@pytest.mark.benchmark(group="fig8")
def test_fig8_go_breakdown(benchmark):
    trace = load_detailed_trace(BENCHMARK)
    results = benchmark.pedantic(
        compute_breakdowns, args=(trace, SIZES), rounds=1, iterations=1
    )

    rows = [
        [
            counters,
            label,
            f"{100 * b['snt']:.2f}%",
            f"{100 * b['st']:.2f}%",
            f"{100 * b['wb']:.2f}%",
            f"{100 * b['overall']:.2f}%",
        ]
        for counters, label, b in results
    ]
    emit_table(
        "fig8_go_breakdown",
        f"Figure 8 — misprediction by bias class, {BENCHMARK}",
        ["counters", "scheme", "SNT", "ST", "WB", "overall"],
        rows,
    )

    by_size = {}
    for counters, label, b in results:
        by_size.setdefault(counters, []).append(b)

    # WB dominates go for the address-indexed scheme at every size (the
    # history-indexed schemes bury it under aliasing/cold strong-class
    # error at small sizes on the scaled traces; the paper's full traces
    # show WB dominating everywhere)
    for counters, (few_b, _full_b, _bimode_b) in by_size.items():
        assert few_b["wb"] > few_b["snt"] and few_b["wb"] > few_b["st"], counters
        assert few_b["wb"] > 0.35 * few_b["overall"], counters

    # more history shrinks the WB share: at every size, the full-history
    # gshare has less WB error than the few-history gshare
    for counters, (few_b, full_b, _bimode_b) in by_size.items():
        assert full_b["wb"] <= few_b["wb"] + 1e-9, counters

    # bi-mode has little room on go: its overall win over full-history
    # gshare is proportionally smaller than the WB floor it cannot touch
    for counters, (_few_b, full_b, bimode_b) in by_size.items():
        assert bimode_b["wb"] > 0.25 * bimode_b["overall"], counters

    # go is much harder than gcc: compare overall at the largest size
    from benchmarks.bench_fig7_gcc_breakdown import BENCHMARK as GCC

    gcc_trace = load_detailed_trace(GCC)
    gcc_results = compute_breakdowns(gcc_trace, SIZES[-1:])
    go_best = min(b["overall"] for _, _, b in results[-3:])
    gcc_best = min(b["overall"] for _, _, b in gcc_results)
    assert go_best > 1.5 * gcc_best
