"""The (enhanced) gskewed predictor [MichaudSeznecUhlig97].

The paper's related-work comparison point: three PHT banks indexed by
*different* hashes of (branch address, global history) and combined by
majority vote.  Because the skewing functions are inter-bank
decorrelated, two branch/history pairs that collide in one bank almost
never collide in the other two, so the majority vote out-votes the
aliased bank.

The original paper builds its skewing functions from GF(2) matrices
(bit-rotation + XOR).  We implement that family directly: bank ``k``
indexes with ``rot_k(pc_lo) ^ rot_k'(hist) ^ pc_hi``-style mixes built
from :func:`_rotate`, which preserves the two properties the scheme
needs — each function is a bijection of the index space, and the
pairwise XOR of any two functions is also (close to) a bijection.

Two update policies are provided:

* ``total`` — all three banks train on every branch;
* ``enhanced`` (default, the paper's *e-gskew* policy) — on a correct
  prediction only the banks that voted with the majority train; on a
  misprediction all banks train.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import WEAKLY_TAKEN, CounterTable
from repro.core.history import GlobalHistoryRegister
from repro.core.indexing import mask
from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.traces.record import BranchTrace

__all__ = ["GSkewPredictor"]


def _rotate(value: int, amount: int, bits: int) -> int:
    """Rotate ``value`` left by ``amount`` within a ``bits``-wide word."""
    if bits == 0:
        return 0
    amount %= bits
    m = mask(bits)
    value &= m
    return ((value << amount) | (value >> (bits - amount))) & m


class GSkewPredictor(BranchPredictor):
    """Three-bank skewed predictor with majority vote.

    Parameters
    ----------
    bank_index_bits:
        log2 of each bank's size (three banks total).
    history_bits:
        Global history length mixed into every bank index.
    update_policy:
        ``"enhanced"`` (partial update, default) or ``"total"``.
    """

    scheme = "gskew"

    NUM_BANKS = 3

    def __init__(
        self,
        bank_index_bits: int,
        history_bits: int | None = None,
        update_policy: str = "enhanced",
    ):
        if bank_index_bits < 0:
            raise ValueError(f"bank_index_bits must be >= 0, got {bank_index_bits}")
        if history_bits is None:
            history_bits = bank_index_bits
        if history_bits < 0:
            raise ValueError(f"history_bits must be >= 0, got {history_bits}")
        if update_policy not in ("enhanced", "total"):
            raise ValueError(f"unknown update policy {update_policy!r}")
        self.bank_index_bits = bank_index_bits
        self.history_bits = history_bits
        self.update_policy = update_policy
        self.banks = [
            CounterTable(bank_index_bits, init=WEAKLY_TAKEN)
            for _ in range(self.NUM_BANKS)
        ]
        self.ghr = GlobalHistoryRegister(history_bits)

    @property
    def name(self) -> str:
        return (
            f"gskew:banks=3x2^{self.bank_index_bits},hist={self.history_bits},"
            f"update={self.update_policy}"
        )

    def size_bits(self) -> int:
        return sum(bank.size_bits() for bank in self.banks)

    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
        self.ghr.reset()

    # -- skewing functions -------------------------------------------------------

    def _indices(self, pc: int) -> tuple:
        """One index per bank; distinct rotations decorrelate the banks."""
        bits = self.bank_index_bits
        m = mask(bits)
        pc_lo = pc & m
        pc_hi = (pc >> bits) & m
        hist = self.ghr.value & m if bits else 0
        i0 = pc_lo ^ _rotate(hist, 0, bits)
        i1 = _rotate(pc_lo, 1, bits) ^ _rotate(hist, bits // 2, bits) ^ pc_hi
        i2 = _rotate(pc_lo, 2, bits) ^ _rotate(hist, (2 * bits) // 3, bits) ^ _rotate(pc_hi, 1, bits)
        return i0, i1, i2

    # -- step interface --------------------------------------------------------------

    def predict(self, pc: int) -> bool:
        votes = sum(
            bank.predict(index) for bank, index in zip(self.banks, self._indices(pc))
        )
        return votes >= 2

    def update(self, pc: int, taken: bool) -> None:
        indices = self._indices(pc)
        bank_predictions = [
            bank.predict(index) for bank, index in zip(self.banks, indices)
        ]
        majority = sum(bank_predictions) >= 2
        if self.update_policy == "total" or majority != taken:
            # total update, and e-gskew's all-banks-on-misprediction rule
            for bank, index in zip(self.banks, indices):
                bank.update(index, taken)
        else:
            # e-gskew: correct prediction trains only the agreeing banks
            for bank, index, voted in zip(self.banks, indices, bank_predictions):
                if voted == majority:
                    bank.update(index, taken)
        self.ghr.push(taken)

    # -- batch interface --------------------------------------------------------------

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        """Counter attribution for the majority vote: the prediction is
        credited to the first bank (lowest bank number) that voted with
        the majority, at id ``bank * bank_size + index``."""
        n = len(trace)
        predictions = np.empty(n, dtype=bool)
        counter_ids = np.empty(n, dtype=np.int64)
        banks = self.banks
        bank_size = 1 << self.bank_index_bits
        enhanced = self.update_policy == "enhanced"

        for i, (pc, taken) in enumerate(
            zip(trace.pcs.tolist(), trace.outcomes.tolist())
        ):
            indices = self._indices(pc)
            votes = [
                bank.predict(index) for bank, index in zip(banks, indices)
            ]
            majority = sum(votes) >= 2
            predictions[i] = majority
            for k in range(self.NUM_BANKS):
                if votes[k] == majority:
                    counter_ids[i] = k * bank_size + indices[k]
                    break
            if not enhanced or majority != taken:
                for bank, index in zip(banks, indices):
                    bank.update(index, taken)
            else:
                for bank, index, voted in zip(banks, indices, votes):
                    if voted == majority:
                        bank.update(index, taken)
            self.ghr.push(taken)

        result = SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )
        return DetailedSimulation(
            result=result,
            counter_ids=counter_ids,
            num_counters=self.NUM_BANKS * bank_size,
            pcs=trace.pcs,
        )
