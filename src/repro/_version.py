"""Package version (kept importable without dependencies)."""

__version__ = "1.0.0"
