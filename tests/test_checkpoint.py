"""Unit tests for predictor checkpointing.

The central property: save-at-midpoint + restore-into-fresh must be
indistinguishable from an uninterrupted run, for every predictor.
"""

import json

import numpy as np
import pytest

from repro.core.checkpoint import (
    load_checkpoint,
    predictor_state,
    restore_state,
    save_checkpoint,
)
from repro.core.registry import make_predictor
from repro.sim.engine import run
from tests.conftest import ALL_SPECS, make_toy_trace


@pytest.fixture(scope="module")
def trace():
    return make_toy_trace(length=1200, seed=31)


class TestRoundTrip:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_checkpoint_resume_equals_uninterrupted(self, spec, trace):
        full = run(make_predictor(spec), trace).predictions

        first, second = trace[:600], trace[600:]
        warm = make_predictor(spec)
        part_a = run(warm, first).predictions
        checkpoint = predictor_state(warm)
        # serialize through JSON to prove the format is JSON-clean
        checkpoint = json.loads(json.dumps(checkpoint))

        resumed = make_predictor(spec)
        restore_state(resumed, checkpoint)
        part_b = run(resumed, second, reset=False).predictions

        assert np.array_equal(np.concatenate([part_a, part_b]), full), spec

    @pytest.mark.parametrize("spec", ALL_SPECS[:6])
    def test_state_is_json_serializable(self, spec, trace):
        p = make_predictor(spec)
        run(p, trace)
        text = json.dumps(predictor_state(p))
        assert isinstance(text, str)


class TestValidation:
    def test_name_mismatch_rejected(self, trace):
        p = make_predictor("gshare:index=8,hist=8")
        checkpoint = predictor_state(p)
        other = make_predictor("gshare:index=8,hist=4")
        with pytest.raises(ValueError):
            restore_state(other, checkpoint)

    def test_version_recorded(self):
        from repro import __version__

        checkpoint = predictor_state(make_predictor("bimodal:index=4"))
        assert checkpoint["version"] == __version__

    def test_unknown_predictor_type(self):
        from repro.core.interfaces import BranchPredictor

        class Weird(BranchPredictor):
            def predict(self, pc):
                return True

            def update(self, pc, taken):
                pass

            def reset(self):
                pass

            def size_bits(self):
                return 0

        with pytest.raises(TypeError):
            predictor_state(Weird())

    def test_size_mismatch_rejected(self):
        p = make_predictor("agree:index=8")
        checkpoint = predictor_state(p)
        checkpoint["state"]["bias_bits"] = [0]  # wrong length
        q = make_predictor("agree:index=8")
        with pytest.raises(ValueError):
            restore_state(q, checkpoint)


class TestFileRoundTrip:
    def test_save_load(self, tmp_path, trace):
        p = make_predictor("bimode:dir=7,hist=7,choice=7")
        run(p, trace)
        path = save_checkpoint(p, tmp_path / "ckpt" / "bimode.json")
        assert path.exists()

        q = make_predictor("bimode:dir=7,hist=7,choice=7")
        load_checkpoint(q, path)
        assert q.taken_bank.states == p.taken_bank.states
        assert q.choice.states == p.choice.states
        assert q.ghr.value == p.ghr.value

    def test_checkpoints_are_inspectable_json(self, tmp_path):
        p = make_predictor("gshare:index=6,hist=6")
        path = save_checkpoint(p, tmp_path / "g.json")
        data = json.loads(path.read_text())
        assert data["name"] == "gshare:index=6,hist=6"
        assert len(data["state"]["table"]) == 64
