"""The agree predictor [Sprangle97], a contemporary de-aliasing scheme.

The paper's related-work section cites the agree predictor as one of the
proposals attacking PHT interference.  Instead of storing branch
*directions*, the PHT stores whether the branch will *agree* with a
per-branch **biasing bit**.  Two oppositely-biased branches aliasing to
the same PHT counter then both train it toward "agree", converting
destructive interference into neutral/constructive interference — the
same goal the bi-mode predictor reaches by bank selection.

The biasing bit lives alongside the BTB entry in hardware; here it is a
direct-mapped bit table indexed by branch address, set to the branch's
*first observed outcome* (the policy Sprangle et al. found adequate).
Bias-bit storage is reported separately from counter storage, mirroring
the paper's counter-bytes cost metric.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import WEAKLY_TAKEN, CounterTable
from repro.core.history import GlobalHistoryRegister, global_history_stream
from repro.core.indexing import gshare_index, gshare_index_stream, mask
from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.traces.record import BranchTrace

__all__ = ["AgreePredictor"]


class AgreePredictor(BranchPredictor):
    """gshare-indexed agree predictor with first-outcome biasing bits.

    Parameters
    ----------
    index_bits:
        log2 of the agree-counter PHT size.
    history_bits:
        Global history length hashed into the PHT index.  Defaults to
        ``index_bits``.
    bias_index_bits:
        log2 of the biasing-bit table size.  Defaults to ``index_bits``.
    """

    scheme = "agree"

    def __init__(
        self,
        index_bits: int,
        history_bits: int | None = None,
        bias_index_bits: int | None = None,
    ):
        if index_bits < 0:
            raise ValueError(f"index_bits must be >= 0, got {index_bits}")
        if history_bits is None:
            history_bits = index_bits
        if not 0 <= history_bits <= index_bits:
            raise ValueError(
                f"history_bits ({history_bits}) must be in [0, {index_bits}]"
            )
        if bias_index_bits is None:
            bias_index_bits = index_bits
        if bias_index_bits < 0:
            raise ValueError(f"bias_index_bits must be >= 0, got {bias_index_bits}")
        self.index_bits = index_bits
        self.history_bits = history_bits
        self.bias_index_bits = bias_index_bits
        # Counters predict "agree with bias"; taken-state == agree.
        self.table = CounterTable(index_bits, init=WEAKLY_TAKEN)
        self.ghr = GlobalHistoryRegister(history_bits)
        self._bias_mask = mask(bias_index_bits)
        self.bias_bits = [False] * (1 << bias_index_bits)
        self.bias_valid = [False] * (1 << bias_index_bits)

    @property
    def name(self) -> str:
        return (
            f"agree:index={self.index_bits},hist={self.history_bits},"
            f"bias=2^{self.bias_index_bits}"
        )

    def size_bits(self) -> int:
        """Counter storage only (paper metric); see :meth:`bias_storage_bits`."""
        return self.table.size_bits()

    def bias_storage_bits(self) -> int:
        """Biasing-bit storage (valid + bias bit per entry)."""
        return 2 * len(self.bias_bits)

    def reset(self) -> None:
        self.table.reset()
        self.ghr.reset()
        self.bias_bits = [False] * len(self.bias_bits)
        self.bias_valid = [False] * len(self.bias_valid)

    def _bias(self, pc: int) -> bool:
        """Current biasing bit (not-taken until the branch is first seen)."""
        return self.bias_bits[pc & self._bias_mask]

    def _index(self, pc: int) -> int:
        return gshare_index(pc, self.ghr.value, self.index_bits, self.history_bits)

    def predict(self, pc: int) -> bool:
        agree = self.table.predict(self._index(pc))
        return self._bias(pc) == agree

    def update(self, pc: int, taken: bool) -> None:
        bias_slot = pc & self._bias_mask
        if not self.bias_valid[bias_slot]:
            # first dynamic occurrence sets the biasing bit
            self.bias_valid[bias_slot] = True
            self.bias_bits[bias_slot] = taken
        agreed = self.bias_bits[bias_slot] == taken
        self.table.update(self._index(pc), agreed)
        self.ghr.push(taken)

    # -- batch interface -----------------------------------------------------------

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        """The prediction counter is the agree-PHT entry: its id is the
        gshare index, exactly as for gshare itself."""
        predictions, counter_ids = self._run(trace, want_counters=True)
        result = SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )
        return DetailedSimulation(
            result=result,
            counter_ids=counter_ids,
            num_counters=self.table.size,
            pcs=trace.pcs,
        )

    def _run(self, trace: BranchTrace, want_counters: bool):
        n = len(trace)
        predictions = np.empty(n, dtype=bool)

        histories = global_history_stream(
            trace.outcomes, self.history_bits, initial=self.ghr.value
        )
        idx_arr = gshare_index_stream(
            trace.pcs, histories, self.index_bits, self.history_bits
        )
        counter_ids = idx_arr.copy() if want_counters else None
        indices = idx_arr.tolist()
        slots = (trace.pcs & self._bias_mask).tolist()
        outcomes = trace.outcomes.tolist()
        states = self.table.states
        bias_bits = self.bias_bits
        bias_valid = self.bias_valid

        for i in range(n):
            j = indices[i]
            slot = slots[i]
            taken = outcomes[i]
            state = states[j]
            predictions[i] = (state >= 2) == bias_bits[slot]
            if not bias_valid[slot]:
                bias_valid[slot] = True
                bias_bits[slot] = taken
            if bias_bits[slot] == taken:
                if state < 3:
                    states[j] = state + 1
            elif state > 0:
                states[j] = state - 1

        if n and self.history_bits:
            for taken in outcomes[-self.history_bits:]:
                self.ghr.push(taken)
        return predictions, counter_ids
