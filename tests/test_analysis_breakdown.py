"""Unit tests for the misprediction breakdown (Figures 7-8 machinery)."""

import numpy as np
import pytest

from repro.analysis.bias import analyze_substreams
from repro.analysis.breakdown import misprediction_breakdown
from repro.core.registry import make_predictor
from repro.sim.engine import run_detailed
from tests.conftest import make_toy_trace
from tests.test_analysis_bias import detailed_from


class TestMispredictionBreakdown:
    def test_classes_partition_the_misses(self):
        # ST stream with 2 misses, WB stream with 3 misses, 20 branches
        pcs = [1] * 10 + [2] * 10
        outcomes = [True] * 10 + [True, False] * 5
        mispredicted = (
            [True, True] + [False] * 8 + [True, True, True] + [False] * 7
        )
        detailed = detailed_from([0] * 0 + pcs, [0] * 20, outcomes, mispredicted)
        breakdown = misprediction_breakdown(analyze_substreams(detailed))
        assert breakdown.st == pytest.approx(2 / 20)
        assert breakdown.wb == pytest.approx(3 / 20)
        assert breakdown.snt == 0.0

    def test_overall_equals_misprediction_rate(self):
        trace = make_toy_trace(length=3000)
        detailed = run_detailed(make_predictor("gshare:index=7,hist=7"), trace)
        breakdown = misprediction_breakdown(analyze_substreams(detailed))
        assert breakdown.overall == pytest.approx(
            detailed.result.misprediction_rate
        )

    def test_empty(self):
        detailed = detailed_from([], [], [], num_counters=1)
        breakdown = misprediction_breakdown(analyze_substreams(detailed))
        assert breakdown.overall == 0.0

    def test_as_dict_and_str(self):
        detailed = detailed_from([1] * 10, [0] * 10, [True] * 10,
                                 mispredicted=[True] + [False] * 9)
        b = misprediction_breakdown(analyze_substreams(detailed))
        assert set(b.as_dict()) == {"SNT", "ST", "WB"}
        assert "overall" in str(b)

    def test_total_branches(self):
        detailed = detailed_from([1] * 7, [0] * 7, [True] * 7)
        b = misprediction_breakdown(analyze_substreams(detailed))
        assert b.total_branches == 7


class TestPaperFigure7Property:
    def test_fewer_history_bits_less_strong_class_error(self, aliasing_workload):
        """Figure 7: at equal size, the address-indexed scheme has the
        least ST+SNT error; the history-indexed scheme trades WB error
        for strong-class (aliasing) error."""
        few = run_detailed(make_predictor("gshare:index=8,hist=2"), aliasing_workload)
        many = run_detailed(make_predictor("gshare:index=8,hist=8"), aliasing_workload)
        b_few = misprediction_breakdown(analyze_substreams(few))
        b_many = misprediction_breakdown(analyze_substreams(many))
        assert b_few.st + b_few.snt < b_many.st + b_many.snt

    def test_bimode_reduces_strong_class_error_vs_history_indexed(
        self, aliasing_workload
    ):
        gshare = run_detailed(make_predictor("gshare:index=8,hist=8"), aliasing_workload)
        bimode = run_detailed(
            make_predictor("bimode:dir=7,hist=7,choice=7"), aliasing_workload
        )
        b_g = misprediction_breakdown(analyze_substreams(gshare))
        b_b = misprediction_breakdown(analyze_substreams(bimode))
        assert b_b.st + b_b.snt < b_g.st + b_g.snt
