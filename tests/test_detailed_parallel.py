"""Parallel Section-4 analysis sweeps (``detailed_matrix``).

The detailed sweep is a first-class parallel workload: per-cell
supervised tasks, in-worker reduction to compact summary dicts, a
JSON-payload journal for crash-safe resume, and the same salvage /
quarantine ladder as the rate sweeps.  These tests assert the two
ISSUE acceptance properties — parallel, resumed, and fault-afflicted
sweeps all produce *bit-identical* aggregates — plus the journal's
payload round-trip contract.
"""

import pytest

from repro import faults, health
from repro.sim.engine import run_detailed
from repro.analysis.summary import summarize_detailed
from repro.core.registry import make_predictor
from repro.sim.journal import PayloadJournal
from repro.sim.parallel import TaskPolicy, detailed_matrix
from repro.sim.runner import ResultCache, trace_key
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile

#: The grid spans every family shape the planner produces: the fused
#: gshare/bi-mode attribution kernels, a lane-tier ported scheme, and
#: a cloop-tier (sequential C) ported scheme — so each drill below
#: covers fused-detailed family tasks, not just the legacy pair.
SPECS = [
    "gshare:index=7,hist=7",
    "bimode:dir=6,hist=6,choice=5",
    "bimodal:index=7",
    "agree:index=6,hist=6",
    "perceptron:index=5,hist=6",
]

BENCHES = ("gcc", "xlisp", "compress")


@pytest.fixture(scope="module")
def traces():
    return {
        name: generate_trace(get_profile(name), length=5_000, seed=3)
        for name in BENCHES
    }


@pytest.fixture(scope="module")
def serial_reference(traces):
    return dict(detailed_matrix(SPECS, traces, jobs=1))


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared-cache"))
    health.clear()
    yield
    health.clear()


class TestPayloadJournal:
    def test_round_trips_summary_dicts(self, tmp_path):
        journal = PayloadJournal(tmp_path / "d.jsonl")
        payload = {"misprediction_rate": 0.125, "breakdown": {"wb": 0.01}}
        journal.record("t1", "gshare:index=8", payload)
        reread = PayloadJournal(journal.path)
        assert reread.lookup("t1", "gshare:index=8") == payload

    def test_rejects_non_dict_payloads(self, tmp_path):
        journal = PayloadJournal(tmp_path / "d.jsonl")
        with pytest.raises(ValueError):
            journal.record("t1", "gshare:index=8", 0.125)

    def test_corrupt_lines_skipped(self, tmp_path):
        journal = PayloadJournal(tmp_path / "d.jsonl")
        journal.record("t1", "a", {"x": 1})
        with open(journal.path, "a") as fh:
            fh.write('{"tkey": "t1", "spec": "b", "payload": 0.5}\n')  # not a dict
            fh.write("{torn")
        reread = PayloadJournal(journal.path)
        assert reread.lookup("t1", "a") == {"x": 1}
        assert reread.lookup("t1", "b") is None
        assert reread.corrupt_lines == 2

    def test_record_many_skips_journalled(self, tmp_path):
        journal = PayloadJournal(tmp_path / "d.jsonl")
        assert journal.record_many("t1", {"a": {"x": 1}, "b": {"y": 2}}) == 2
        assert journal.record_many("t1", {"a": {"x": 9}, "c": {"z": 3}}) == 1
        assert journal.lookup("t1", "a") == {"x": 1}  # first write wins


class TestDetailedMatrix:
    def test_serial_matches_direct_summaries(self, traces, serial_reference):
        for spec in SPECS:
            for bench in BENCHES:
                detailed = run_detailed(make_predictor(spec), traces[bench])
                assert serial_reference[spec][bench] == summarize_detailed(detailed)

    def test_parallel_matches_serial(self, traces, serial_reference):
        result = detailed_matrix(
            SPECS, traces, jobs=2, policy=TaskPolicy(retries=1, backoff=0.0)
        )
        assert dict(result) == serial_reference
        assert result.failures == []

    def test_rate_cache_fed_as_byproduct(self, traces, serial_reference, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        detailed_matrix(SPECS, traces, cache=cache, jobs=1)
        cache.flush()
        for spec in SPECS:
            for bench in BENCHES:
                assert cache.get(spec, trace_key(traces[bench])) == pytest.approx(
                    serial_reference[spec][bench]["misprediction_rate"]
                )

    def test_include_bias_table_round_trips(self, traces, tmp_path):
        journal = PayloadJournal(tmp_path / "bt.jsonl")
        small = {"gcc": traces["gcc"]}
        first = detailed_matrix(
            SPECS, small, jobs=1, journal=journal, include_bias_table=True
        )
        resumed = detailed_matrix(
            SPECS,
            small,
            jobs=1,
            journal=PayloadJournal(journal.path),
            include_bias_table=True,
        )
        assert dict(resumed) == dict(first)


class TestDetailedResume:
    def test_interrupted_sweep_resumes_bit_identical(
        self, traces, serial_reference, tmp_path
    ):
        journal = PayloadJournal(tmp_path / "det.jsonl")
        # nth lands mid-way through the *second* bench: the first
        # bench's five cells are journalled, the interrupt arrives with
        # work still outstanding
        with faults.inject("detailed:sigint:nth=7"):
            with pytest.raises(KeyboardInterrupt):
                detailed_matrix(SPECS, traces, jobs=1, journal=journal)
        done_before = len(PayloadJournal(journal.path))
        assert 0 < done_before < len(SPECS) * len(BENCHES)

        resumed_journal = PayloadJournal(journal.path)
        with faults.traced(tmp_path / "trace"):
            resumed = detailed_matrix(SPECS, traces, jobs=1, journal=resumed_journal)
        assert dict(resumed) == serial_reference  # bit-identical aggregates
        assert resumed_journal.resumed_cells == done_before

        # journalled cells were never recomputed
        counts = faults.trace_counts(tmp_path / "trace", site="detailed")
        assert sum(counts.values()) == len(SPECS) * len(BENCHES) - done_before


class TestDetailedFaults:
    def test_killed_worker_drill(self, traces, serial_reference):
        """ISSUE acceptance: a hard-killed worker mid-sweep must not
        change the aggregates — the pool reseeds, the cell retries or
        is salvaged serially."""
        with faults.inject("worker:exit:bench=gcc"):
            result = detailed_matrix(
                SPECS, traces, jobs=2, policy=TaskPolicy(retries=2, backoff=0.0)
            )
        assert dict(result) == serial_reference
        assert result.failures == []
        kinds = {e.actual for e in health.events(component="parallel-pool")}
        assert "pool-broken" in kinds

    def test_crashing_cell_salvaged_serially(self, traces, serial_reference, tmp_path):
        with faults.traced(tmp_path / "trace"):
            with faults.inject("worker:raise:bench=gcc,where=worker"):
                result = detailed_matrix(
                    SPECS, traces, jobs=2, policy=TaskPolicy(retries=0, backoff=0.0)
                )
        assert dict(result) == serial_reference
        assert result.failures == []
        # healthy benchmarks computed once; gcc cells recovered in-parent
        counts = faults.trace_counts(tmp_path / "trace", site="detailed")
        for spec in SPECS:
            assert counts[("detailed", "xlisp")] == len(SPECS)
            assert counts[("detailed", "gcc")] == len(SPECS)

    def test_persistent_failure_quarantined(self, traces, serial_reference):
        with faults.inject("detailed:raise:bench=gcc"):
            result = detailed_matrix(
                SPECS, traces, jobs=2, policy=TaskPolicy(retries=0, backoff=0.0)
            )
        assert result.quarantined_benches == ["gcc"]
        assert {cell.bench for cell in result.failures} == {"gcc"}
        for spec in SPECS:
            assert "gcc" not in result[spec]
            for bench in ("xlisp", "compress"):
                assert result[spec][bench] == serial_reference[spec][bench]
