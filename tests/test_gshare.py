"""Unit tests for the gshare baseline."""

import numpy as np
import pytest

from repro.core.counters import WEAKLY_TAKEN
from repro.predictors.gshare import GSharePredictor
from repro.sim.engine import run, run_steps
from tests.conftest import make_toy_trace


class TestConfiguration:
    def test_default_is_single_pht(self):
        p = GSharePredictor(index_bits=10)
        assert p.history_bits == 10
        assert p.num_phts == 1

    def test_multi_pht_configuration(self):
        p = GSharePredictor(index_bits=10, history_bits=7)
        assert p.num_phts == 8

    def test_zero_history_degenerates_to_bimodal(self):
        from repro.predictors.bimodal import BimodalPredictor

        trace = make_toy_trace(length=1000)
        gshare = run(GSharePredictor(index_bits=8, history_bits=0), trace)
        bimodal = run(BimodalPredictor(index_bits=8), trace)
        assert np.array_equal(gshare.predictions, bimodal.predictions)

    def test_size_bits(self):
        assert GSharePredictor(index_bits=12).size_bits() == 8192
        # 0.25 KB at 10 index bits (paper's smallest point)
        assert GSharePredictor(index_bits=10).size_bytes() == 256.0

    def test_counters_start_weakly_taken(self):
        p = GSharePredictor(index_bits=4)
        assert p.table.states == [WEAKLY_TAKEN] * 16

    def test_rejects_bad_history(self):
        with pytest.raises(ValueError):
            GSharePredictor(index_bits=4, history_bits=5)

    def test_name(self):
        assert GSharePredictor(12, 8).name == "gshare:index=12,hist=8"


class TestSemantics:
    def test_initial_prediction_taken(self):
        assert GSharePredictor(index_bits=6).predict(0) is True

    def test_learns_biased_branch(self):
        p = GSharePredictor(index_bits=6)
        misses = sum(not p.predict_and_update(9, True) for _ in range(50))
        assert misses == 0  # init weakly-taken: predicts taken from the start

    def test_learns_not_taken_branch_after_one_update(self):
        # weakly-taken init: one not-taken outcome flips the prediction
        p = GSharePredictor(index_bits=6, history_bits=0)
        results = [p.predict_and_update(9, False) for _ in range(10)]
        assert results[0] is True
        assert all(r is False for r in results[1:])

    def test_history_disambiguates_alternation(self):
        """An alternating branch is mispredicted forever by a 2-bit
        counter but captured once history splits its substreams."""
        p = GSharePredictor(index_bits=6, history_bits=2)
        outcomes = [bool(i % 2) for i in range(200)]
        misses = sum(p.predict_and_update(5, o) != o for o in outcomes)
        assert misses <= 6  # warm-up only

    def test_bimodal_fails_alternation(self):
        p = GSharePredictor(index_bits=6, history_bits=0)
        outcomes = [bool(i % 2) for i in range(200)]
        misses = sum(p.predict_and_update(5, o) != o for o in outcomes)
        assert misses >= 90

    def test_update_pushes_history(self):
        p = GSharePredictor(index_bits=6, history_bits=4)
        p.update(0, True)
        p.update(0, True)
        p.update(0, False)
        assert p.ghr.value == 0b110

    def test_reset(self):
        p = GSharePredictor(index_bits=6)
        trace = make_toy_trace(length=200)
        run(p, trace)
        p.reset()
        assert p.table.states == [WEAKLY_TAKEN] * 64
        assert p.ghr.value == 0


class TestBatchPath:
    @pytest.mark.parametrize("history_bits", [0, 1, 4, 8])
    def test_batch_equals_step(self, history_bits):
        trace = make_toy_trace(length=1200, seed=5)
        batch = run(GSharePredictor(8, history_bits), trace)
        steps = run_steps(GSharePredictor(8, history_bits), trace)
        assert np.array_equal(batch.predictions, steps.predictions)

    def test_warm_start_batch_matches_uninterrupted_run(self):
        trace = make_toy_trace(length=600)
        full = run(GSharePredictor(8), trace).predictions
        p = GSharePredictor(8)
        a = run(p, trace[:250]).predictions
        b = run(p, trace[250:], reset=False).predictions
        assert np.array_equal(np.concatenate([a, b]), full)

    def test_detailed_counter_ids_are_table_indices(self):
        p = GSharePredictor(index_bits=6, history_bits=6)
        trace = make_toy_trace(length=500)
        detailed = p.simulate_detailed(trace)
        assert detailed.num_counters == 64
        assert detailed.counter_ids.max() < 64
        # recompute indices independently
        from repro.core.history import global_history_stream
        from repro.core.indexing import gshare_index_stream

        hists = global_history_stream(trace.outcomes, 6)
        expect = gshare_index_stream(trace.pcs, hists, 6, 6)
        assert np.array_equal(detailed.counter_ids, expect)

    def test_misprediction_rate_on_workload_is_sane(self, small_workload):
        rate = run(GSharePredictor(12), small_workload).misprediction_rate
        assert 0.0 < rate < 0.5
