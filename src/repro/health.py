"""Structured execution-health reporting for sweeps.

Long sweeps route every cell through a chain of execution strategies —
compiled C step loop, numpy kernels, pure-Python fallbacks, worker
pools that may degrade to serial — and silently falling down that chain
makes a sweep's performance (and failure modes) impossible to reason
about after the fact.  This module is the narrow waist those layers
report through: each fallback, retry, quarantine, or engine selection
is recorded as a :class:`DegradationEvent`, and a sweep's final report
(:func:`summary`) states which engine actually ran each batch of cells
and what, if anything, went wrong along the way.

Events are process-local, cheap to record, and bounded (the newest
``_MAX_EVENTS`` are kept; older ones are dropped but still counted).
Severities:

* ``"info"`` — normal engine selection (which kernel ran a batch);
* ``"degraded"`` — a fallback fired (compiled kernel unavailable,
  worker pool replaced by serial execution, a retry succeeded);
* ``"error"`` — work was lost or quarantined (a cell failed every
  retry, a cache table could not be written).

Two consumers beyond the end-of-sweep summary:

* ``REPRO_HEALTH_JSON=1`` additionally prints one JSON object per
  event to stderr as it is recorded (machine-readable monitoring; the
  coalesced human summary stays the default);
* in-process listeners (:func:`add_listener`) receive every event as
  it is recorded — the sweep service uses this to stream degradations
  to its clients.  Listeners are called outside the module lock and
  must never raise (exceptions are swallowed); re-recording events
  from inside a listener would deadlock nothing but is still a bad
  idea.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "DegradationEvent",
    "record",
    "emit",
    "engine_used",
    "events",
    "clear",
    "summary",
    "add_listener",
    "remove_listener",
    "json_event",
]

#: Newest events kept in memory; older ones are dropped but counted.
_MAX_EVENTS = 10_000

SEVERITIES = ("info", "degraded", "error")


@dataclass(frozen=True)
class DegradationEvent:
    """One structured record of what actually ran (or failed to)."""

    component: str  # e.g. "bimode-kernel", "parallel-pool", "result-cache"
    expected: str  # what should have run, best case
    actual: str  # what did run
    reason: str = ""
    severity: str = "info"
    context: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def degraded(self) -> bool:
        return self.severity != "info"

    @property
    def ctx(self) -> Dict[str, object]:
        return dict(self.context)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        arrow = (
            self.actual
            if self.actual == self.expected
            else f"{self.expected} -> {self.actual}"
        )
        tail = f" ({self.reason})" if self.reason else ""
        return f"[{self.severity}] {self.component}: {arrow}{tail}"


_lock = threading.Lock()
_events: List[DegradationEvent] = []
_dropped = 0
_listeners: List[Callable[[DegradationEvent], None]] = []


def json_event(event: DegradationEvent) -> str:
    """One event as a single-line JSON object (stable key order)."""
    return json.dumps(
        {
            "severity": event.severity,
            "component": event.component,
            "expected": event.expected,
            "actual": event.actual,
            "reason": event.reason,
            "context": event.ctx,
        },
        sort_keys=True,
        default=str,
    )


def _json_mode() -> bool:
    return os.environ.get("REPRO_HEALTH_JSON", "").strip() not in ("", "0")


def add_listener(listener: Callable[[DegradationEvent], None]) -> None:
    """Call ``listener`` with every subsequently recorded event."""
    with _lock:
        _listeners.append(listener)


def remove_listener(listener: Callable[[DegradationEvent], None]) -> None:
    """Stop notifying ``listener`` (no-op if never added)."""
    with _lock:
        try:
            _listeners.remove(listener)
        except ValueError:
            pass


def record(event: DegradationEvent) -> DegradationEvent:
    """Append one event to the process-local log (bounded)."""
    global _dropped
    with _lock:
        _events.append(event)
        if len(_events) > _MAX_EVENTS:
            del _events[0]
            _dropped += 1
        listeners = list(_listeners)
    if _json_mode():
        try:
            print(json_event(event), file=sys.stderr, flush=True)
        except (OSError, ValueError):  # pragma: no cover - stderr gone
            pass
    for listener in listeners:
        try:
            listener(event)
        except Exception:  # pragma: no cover - listeners must not break sweeps
            pass
    return event


def emit(
    component: str,
    expected: str,
    actual: str,
    reason: str = "",
    severity: str = "degraded",
    **context,
) -> DegradationEvent:
    """Build and record an event in one call."""
    return record(
        DegradationEvent(
            component=component,
            expected=expected,
            actual=actual,
            reason=reason,
            severity=severity,
            context=tuple(sorted(context.items())),
        )
    )


def engine_used(
    component: str,
    engine: str,
    expected: Optional[str] = None,
    cells: int = 1,
    reason: str = "",
) -> DegradationEvent:
    """Record which execution engine ran a batch of cells.

    Severity is ``"info"`` when the engine is the expected one (or no
    expectation applies) and ``"degraded"`` when the dispatch chain fell
    back — e.g. the compiled kernel was expected but numpy ran.
    """
    expected = engine if expected is None else expected
    severity = "info" if engine == expected else "degraded"
    return emit(
        component, expected, engine, reason=reason, severity=severity, cells=cells
    )


def events(
    component: Optional[str] = None, severity: Optional[str] = None
) -> List[DegradationEvent]:
    """Recorded events, optionally filtered, oldest first."""
    with _lock:
        snapshot = list(_events)
    if component is not None:
        snapshot = [e for e in snapshot if e.component == component]
    if severity is not None:
        snapshot = [e for e in snapshot if e.severity == severity]
    return snapshot


def clear() -> None:
    """Drop all recorded events (tests, or between sweeps)."""
    global _dropped
    with _lock:
        _events.clear()
        _dropped = 0


def summary(degraded_only: bool = False) -> str:
    """Aggregated human-readable report, one line per distinct event.

    Identical events are coalesced with an occurrence count and a total
    cell count, so a sweep that ran ten thousand cells through one
    engine reports one line, not ten thousand.
    """
    with _lock:
        snapshot = list(_events)
        dropped = _dropped
    groups: Dict[Tuple[str, str, str, str, str], List[int]] = {}
    order: List[Tuple[str, str, str, str, str]] = []
    for event in snapshot:
        if degraded_only and not event.degraded:
            continue
        key = (
            event.severity,
            event.component,
            event.expected,
            event.actual,
            event.reason,
        )
        if key not in groups:
            groups[key] = [0, 0]
            order.append(key)
        groups[key][0] += 1
        groups[key][1] += int(event.ctx.get("cells", 0) or 0)
    lines = []
    for key in order:
        severity, component, expected, actual, reason = key
        count, cells = groups[key]
        arrow = actual if actual == expected else f"{expected} -> {actual}"
        bits = [f"[{severity}] {component}: {arrow}"]
        if reason:
            bits.append(f"({reason})")
        bits.append(f"x{count}")
        if cells:
            bits.append(f"[{cells} cells]")
        lines.append(" ".join(bits))
    if dropped:
        lines.append(f"(+{dropped} older events dropped)")
    return "\n".join(lines)
