"""Ablation — bi-mode update policy and choice indexing.

Two design choices the paper calls out in Section 2.2:

* **partial update** — only the selected direction bank trains, and the
  choice predictor is spared when it chose wrongly but the selected
  counter was right.  The paper: "this partial update policy is
  particularly effective when the total hardware budget is small."
  Ablated against training *both* banks (``full_update``).
* **choice indexed by address** — the choice predictor must capture
  per-address bias, so it is indexed by the branch address alone.
  Ablated against indexing it with the gshare hash
  (``choice_uses_history``), which destroys the bias signal.

Expected shapes: partial update at or below full update, with the gap
largest at the small end; address-indexed choice strictly better than
history-indexed choice.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_table, load_bench_suite, result_cache
from repro.sim.runner import evaluate

SIZES = [9, 11, 13]  # direction-bank index bits


def _spec(bits, **flags):
    extra = "".join(f",{k}=1" for k, v in flags.items() if v)
    return f"bimode:dir={bits},hist={bits},choice={bits}{extra}"


def _run():
    traces = load_bench_suite("cint95")
    cache = result_cache()
    table = {}
    for bits in SIZES:
        for label, spec in (
            ("partial (paper)", _spec(bits)),
            ("full update", _spec(bits, full_update=True)),
            ("choice uses history", _spec(bits, choice_hist=True)),
        ):
            rates = [evaluate(spec, t, cache=cache) for t in traces.values()]
            table[(bits, label)] = sum(rates) / len(rates)
    return table


@pytest.mark.benchmark(group="ablation")
def test_ablation_update_policy(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    labels = ["partial (paper)", "full update", "choice uses history"]
    rows = [
        [f"2x2^{bits}"] + [f"{100 * table[(bits, label)]:.2f}%" for label in labels]
        for bits in SIZES
    ]
    emit_table(
        "ablation_update_policy",
        "Ablation — bi-mode update policy (CINT95 average)",
        ["direction banks"] + labels,
        rows,
    )

    for bits in SIZES:
        partial = table[(bits, "partial (paper)")]
        full = table[(bits, "full update")]
        hashed_choice = table[(bits, "choice uses history")]
        assert partial <= full + 1e-12, bits
        assert partial < hashed_choice, bits

    # partial-update advantage is largest at the smallest budget
    gaps = [
        table[(bits, "full update")] - table[(bits, "partial (paper)")]
        for bits in SIZES
    ]
    assert gaps[0] >= gaps[-1] - 1e-3, gaps
