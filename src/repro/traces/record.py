"""Branch trace containers.

A :class:`BranchTrace` is the unit of work for every simulation in this
package: the time-ordered sequence of *conditional* branch executions of
one benchmark run, as produced by hardware monitoring (IBS) or ATOM
instrumentation (SPEC) in the paper, and by :mod:`repro.workloads` here.

Only conditional branches are stored — the paper's predictors and
statistics (Table 2) consider conditional branches only.  Each record
carries the branch PC (a word address) and the resolved direction.
Storage is two parallel numpy arrays, which keeps multi-hundred-thousand
branch traces compact and lets simulation fast paths vectorize index
computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple

import numpy as np

__all__ = ["BranchRecord", "BranchTrace"]


@dataclass(frozen=True)
class BranchRecord:
    """One executed conditional branch."""

    pc: int
    taken: bool

    def __iter__(self):
        return iter((self.pc, self.taken))


@dataclass
class BranchTrace:
    """A time-ordered sequence of executed conditional branches.

    Attributes
    ----------
    pcs:
        ``int64`` array of branch word addresses.
    outcomes:
        ``bool`` array of resolved directions (``True`` = taken).
    name:
        Optional benchmark name (e.g. ``"gcc"``) used in reports and as
        a cache key component.
    """

    pcs: np.ndarray
    outcomes: np.ndarray
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.pcs = np.ascontiguousarray(np.asarray(self.pcs, dtype=np.int64))
        self.outcomes = np.ascontiguousarray(np.asarray(self.outcomes, dtype=bool))
        if self.pcs.ndim != 1 or self.outcomes.ndim != 1:
            raise ValueError("pcs and outcomes must be 1-D arrays")
        if len(self.pcs) != len(self.outcomes):
            raise ValueError(
                f"pcs ({len(self.pcs)}) and outcomes ({len(self.outcomes)}) lengths differ"
            )
        if len(self.pcs) and self.pcs.min() < 0:
            raise ValueError("branch PCs must be non-negative")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def trusted(
        cls,
        pcs: np.ndarray,
        outcomes: np.ndarray,
        name: str = "",
        metadata: dict | None = None,
    ) -> "BranchTrace":
        """Wrap already-validated arrays without copying or scanning them.

        The regular constructor normalizes dtypes (a copy for anything
        foreign) and validates ``pcs.min() >= 0`` — which faults in every
        page of a memory-mapped array.  Store readers
        (:class:`repro.traces.store.TraceStore`) validated the arrays at
        publish time, so they use this constructor to keep opening a
        trace at mmap cost.  The arrays must already be 1-D, equal
        length, ``int64``/``bool``.
        """
        trace = object.__new__(cls)
        trace.pcs = pcs
        trace.outcomes = outcomes
        trace.name = name
        trace.metadata = {} if metadata is None else metadata
        return trace

    @classmethod
    def from_records(
        cls, records: Sequence[BranchRecord] | Sequence[Tuple[int, bool]], name: str = ""
    ) -> "BranchTrace":
        """Build a trace from an iterable of records or ``(pc, taken)`` pairs."""
        pairs = [tuple(r) for r in records]
        pcs = np.fromiter((pc for pc, _ in pairs), dtype=np.int64, count=len(pairs))
        outcomes = np.fromiter(
            (bool(taken) for _, taken in pairs), dtype=bool, count=len(pairs)
        )
        return cls(pcs=pcs, outcomes=outcomes, name=name)

    @classmethod
    def empty(cls, name: str = "") -> "BranchTrace":
        return cls(
            pcs=np.empty(0, dtype=np.int64), outcomes=np.empty(0, dtype=bool), name=name
        )

    # -- sequence protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pcs)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return BranchTrace(
                pcs=self.pcs[item],
                outcomes=self.outcomes[item],
                name=self.name,
                metadata=dict(self.metadata),
            )
        return BranchRecord(pc=int(self.pcs[item]), taken=bool(self.outcomes[item]))

    def __iter__(self) -> Iterator[BranchRecord]:
        for pc, taken in zip(self.pcs.tolist(), self.outcomes.tolist()):
            yield BranchRecord(pc=pc, taken=taken)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BranchTrace):
            return NotImplemented
        return (
            self.name == other.name
            and np.array_equal(self.pcs, other.pcs)
            and np.array_equal(self.outcomes, other.outcomes)
        )

    # -- operations ---------------------------------------------------------------

    def concat(self, other: "BranchTrace", name: str | None = None) -> "BranchTrace":
        """Concatenate two traces in time order."""
        return BranchTrace(
            pcs=np.concatenate([self.pcs, other.pcs]),
            outcomes=np.concatenate([self.outcomes, other.outcomes]),
            name=self.name if name is None else name,
        )

    def static_branches(self) -> np.ndarray:
        """Sorted array of distinct static branch PCs appearing in the trace."""
        return np.unique(self.pcs)

    @property
    def num_static(self) -> int:
        """Number of distinct static conditional branches (Table 2, col. 1)."""
        return len(self.static_branches())

    @property
    def num_dynamic(self) -> int:
        """Number of executed conditional branches (Table 2, col. 2)."""
        return len(self)

    @property
    def taken_rate(self) -> float:
        """Fraction of dynamic branches that were taken."""
        if not len(self):
            return 0.0
        return float(self.outcomes.mean())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "<unnamed>"
        return f"BranchTrace({label}: {self.num_dynamic} dynamic, {self.num_static} static)"
