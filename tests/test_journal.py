"""Unit tests for the append-only sweep journal."""

import json
import os
import signal

import pytest

from repro.sim.journal import SweepJournal
from repro.sim.runner import ResultCache


@pytest.fixture()
def journal(tmp_path):
    return SweepJournal(tmp_path / "sweep.jsonl")


class TestRecordAndLookup:
    def test_round_trip(self, journal):
        assert journal.record("t1", "spec-a", 0.125) == 1
        assert journal.lookup("t1", "spec-a") == 0.125
        assert journal.lookup("t1", "spec-b") is None
        assert journal.lookup("t2", "spec-a") is None

    def test_float_repr_round_trips_exactly(self, journal):
        rate = 1 / 3
        journal.record("t1", "spec", rate)
        fresh = SweepJournal(journal.path)
        assert fresh.lookup("t1", "spec") == rate  # bit-identical

    def test_record_many_skips_already_journalled(self, journal):
        journal.record_many("t1", {"a": 0.1, "b": 0.2})
        appended = journal.record_many("t1", {"a": 0.9, "b": 0.9, "c": 0.3})
        assert appended == 1  # only "c" was fresh
        # first write wins: the journal is append-only, not last-write-wins
        assert journal.lookup("t1", "a") == 0.1
        assert journal.lookup("t1", "c") == 0.3

    def test_record_many_empty_writes_nothing(self, journal):
        assert journal.record_many("t1", {}) == 0
        assert not journal.path.exists()

    def test_completed_collects_one_trace(self, journal):
        journal.record_many("t1", {"a": 0.1, "b": 0.2})
        journal.record_many("t2", {"a": 0.5})
        assert journal.completed("t1") == {"a": 0.1, "b": 0.2}
        assert journal.completed("t2") == {"a": 0.5}
        assert journal.completed("t3") == {}

    def test_len_counts_cells(self, journal):
        assert len(journal) == 0
        journal.record_many("t1", {"a": 0.1, "b": 0.2})
        journal.record("t2", "a", 0.3)
        assert len(SweepJournal(journal.path)) == 3

    def test_one_line_per_cell_jsonl(self, journal):
        journal.record_many("t1", {"b": 0.2, "a": 0.1})
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2
        entries = [json.loads(line) for line in lines]
        assert entries[0] == {"tkey": "t1", "spec": "a", "rate": 0.1}
        assert entries[1] == {"tkey": "t1", "spec": "b", "rate": 0.2}


class TestResilience:
    def test_missing_file_is_empty(self, journal):
        assert len(journal) == 0
        assert journal.lookup("t", "s") is None

    def test_torn_final_line_skipped(self, journal):
        journal.record_many("t1", {"a": 0.1, "b": 0.2})
        with open(journal.path, "a") as fh:
            fh.write('{"tkey": "t1", "spec": "c", "ra')  # hard-kill torn write
        fresh = SweepJournal(journal.path)
        assert fresh.completed("t1") == {"a": 0.1, "b": 0.2}
        assert fresh.corrupt_lines == 1

    @pytest.mark.parametrize(
        "line",
        [
            "not json at all",
            '{"tkey": "t", "spec": "s"}',  # missing rate
            '{"tkey": "t", "spec": "s", "rate": 1.5}',  # out of range
            '{"tkey": "t", "spec": "s", "rate": "fast"}',  # not a number
            '{"tkey": "t", "spec": "s", "rate": true}',  # bool is not a rate
            '{"tkey": 3, "spec": "s", "rate": 0.5}',  # non-string key
            '[0.5]',  # not an object
        ],
    )
    def test_garbage_lines_ignored(self, journal, line):
        journal.record("t1", "good", 0.25)
        with open(journal.path, "a") as fh:
            fh.write(line + "\n")
        fresh = SweepJournal(journal.path)
        assert fresh.completed("t1") == {"good": 0.25}
        assert fresh.corrupt_lines == 1
        assert len(fresh) == 1

    def test_record_after_corrupt_line_still_appends(self, journal):
        journal.record("t1", "a", 0.1)
        with open(journal.path, "a") as fh:
            fh.write("garbage\n")
        fresh = SweepJournal(journal.path)
        fresh.record("t1", "b", 0.2)
        assert SweepJournal(journal.path).completed("t1") == {"a": 0.1, "b": 0.2}

    def test_discard(self, journal):
        journal.record("t1", "a", 0.1)
        journal.discard()
        assert not journal.path.exists()
        assert len(journal) == 0
        journal.discard()  # idempotent on a missing file


class TestCompact:
    def test_missing_file_is_noop(self, journal):
        assert journal.compact() == 0
        assert not journal.path.exists()

    def test_drops_duplicates_and_garbage(self, journal):
        journal.record_many("t1", {"a": 0.1, "b": 0.2})
        # duplicates appended by "another writer" + a torn final line
        with open(journal.path, "a") as fh:
            fh.write('{"rate": 0.9, "spec": "a", "tkey": "t1"}\n')
            fh.write("garbage\n")
            fh.write('{"tkey": "t1", "spec": "c", "ra')
        dirty = SweepJournal(journal.path)
        assert dirty.compact() == 3
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2
        assert dirty.corrupt_lines == 0

    def test_preserves_values_bit_identically(self, journal):
        rates = {"a": 1 / 3, "b": 1 / 7, "c": 0.0, "d": 1.0}
        journal.record_many("t1", rates)
        journal.record_many("t2", {"a": 2 / 3})
        SweepJournal(journal.path).compact()
        fresh = SweepJournal(journal.path)
        assert fresh.completed("t1") == rates
        assert fresh.lookup("t2", "a") == 2 / 3

    def test_duplicate_cells_collapse_to_loaded_value(self, journal):
        journal.record("t1", "a", 0.1)
        # A concurrent writer with a stale view appended the same cell;
        # load is last-line-wins, and compact preserves exactly the
        # value a resumed sweep would have seen.
        with open(journal.path, "a") as fh:
            fh.write('{"rate": 0.9, "spec": "a", "tkey": "t1"}\n')
        dirty = SweepJournal(journal.path)
        loaded = dirty.lookup("t1", "a")
        assert dirty.compact() == 1
        assert SweepJournal(journal.path).lookup("t1", "a") == loaded

    def test_idempotent_and_byte_stable(self, journal):
        journal.record_many("t1", {"b": 0.2, "a": 0.1})
        journal.record_many("t0", {"z": 0.5})
        SweepJournal(journal.path).compact()
        once = journal.path.read_bytes()
        fresh = SweepJournal(journal.path)
        assert fresh.compact() == 0
        assert journal.path.read_bytes() == once  # sorted => byte-equal

    def test_no_tmp_file_left_behind(self, journal):
        journal.record("t1", "a", 0.1)
        journal.compact()
        leftovers = [p for p in journal.path.parent.iterdir() if p.name != journal.path.name]
        assert leftovers == []

    def test_payload_journal_compacts(self, tmp_path):
        from repro.sim.journal import PayloadJournal

        journal = PayloadJournal(tmp_path / "detailed.jsonl")
        journal.record_many("t1", {"a": {"misprediction_rate": 0.25}})
        with open(journal.path, "a") as fh:
            fh.write('{"payload": [1], "spec": "b", "tkey": "t1"}\n')  # not an object
        assert PayloadJournal(journal.path).compact() == 1
        fresh = PayloadJournal(journal.path)
        assert fresh.lookup("t1", "a") == {"misprediction_rate": 0.25}


class TestForName:
    def test_sanitizes_name(self, tmp_path):
        journal = SweepJournal.for_name("fig2 cint95/scale 0.1!", root=tmp_path)
        assert journal.path.parent == tmp_path
        assert journal.path.name == "fig2_cint95_scale_0.1_.jsonl"

    def test_empty_name_falls_back(self, tmp_path):
        assert SweepJournal.for_name("  ", root=tmp_path).path.name.startswith("sweep")

    def test_default_root_under_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        journal = SweepJournal.for_name("fig3")
        assert journal.path == tmp_path / "journal" / "fig3.jsonl"

    def test_resumed_cells_reported(self, tmp_path):
        journal = SweepJournal.for_name("x", root=tmp_path)
        journal.record_many("t", {"a": 0.1, "b": 0.2})
        fresh = SweepJournal.for_name("x", root=tmp_path)
        len(fresh)  # force the load
        assert fresh.resumed_cells == 2


class TestGuard:
    def test_sigint_flushes_cache_then_interrupts(self, journal, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        # Defer writes *without* the context manager, so the signal
        # handler installed by guard() is the only thing that can flush.
        cache._defer_writes = True
        with pytest.raises(KeyboardInterrupt):
            with journal.guard(cache):
                cache.put("spec", "tkey", 0.5)
                assert ResultCache(tmp_path / "cache").get("spec", "tkey") is None
                os.kill(os.getpid(), signal.SIGINT)
        # the handler flushed the deferred cache before interrupting
        assert ResultCache(tmp_path / "cache").get("spec", "tkey") == 0.5

    def test_sigterm_raises_systemexit(self, journal):
        with pytest.raises(SystemExit) as excinfo:
            with journal.guard():
                os.kill(os.getpid(), signal.SIGTERM)
        assert excinfo.value.code == 128 + signal.SIGTERM

    def test_handlers_restored(self, journal):
        before_int = signal.getsignal(signal.SIGINT)
        before_term = signal.getsignal(signal.SIGTERM)
        with journal.guard():
            assert signal.getsignal(signal.SIGINT) is not before_int
        assert signal.getsignal(signal.SIGINT) is before_int
        assert signal.getsignal(signal.SIGTERM) is before_term

    def test_noop_outside_main_thread(self, journal):
        import threading

        outcome = {}

        def _run():
            try:
                with journal.guard():
                    outcome["ok"] = True
            except Exception as exc:  # pragma: no cover - the failure mode
                outcome["error"] = exc

        thread = threading.Thread(target=_run)
        thread.start()
        thread.join()
        assert outcome == {"ok": True}
