"""Unit tests for saturating counters and counter tables."""

import numpy as np
import pytest

from repro.core.counters import (
    STRONGLY_NOT_TAKEN,
    STRONGLY_TAKEN,
    WEAKLY_NOT_TAKEN,
    WEAKLY_TAKEN,
    CounterTable,
    SaturatingCounter,
)


class TestSaturatingCounter:
    def test_initial_state_weakly_taken_by_default(self):
        assert SaturatingCounter().state == WEAKLY_TAKEN

    def test_prediction_threshold(self):
        assert not SaturatingCounter(init=0).prediction
        assert not SaturatingCounter(init=1).prediction
        assert SaturatingCounter(init=2).prediction
        assert SaturatingCounter(init=3).prediction

    def test_taken_increments(self):
        c = SaturatingCounter(init=WEAKLY_TAKEN)
        c.update(True)
        assert c.state == STRONGLY_TAKEN

    def test_not_taken_decrements(self):
        c = SaturatingCounter(init=WEAKLY_TAKEN)
        c.update(False)
        assert c.state == WEAKLY_NOT_TAKEN

    def test_saturates_high(self):
        c = SaturatingCounter(init=STRONGLY_TAKEN)
        c.update(True)
        assert c.state == STRONGLY_TAKEN

    def test_saturates_low(self):
        c = SaturatingCounter(init=STRONGLY_NOT_TAKEN)
        c.update(False)
        assert c.state == STRONGLY_NOT_TAKEN

    def test_hysteresis_single_anomaly_does_not_flip_prediction(self):
        # the defining property of 2-bit counters vs 1-bit
        c = SaturatingCounter(init=STRONGLY_TAKEN)
        c.update(False)
        assert c.prediction  # still taken after one not-taken

    def test_two_anomalies_flip_prediction(self):
        c = SaturatingCounter(init=STRONGLY_TAKEN)
        c.update(False)
        c.update(False)
        assert not c.prediction

    def test_predict_and_update_returns_pre_update_prediction(self):
        c = SaturatingCounter(init=WEAKLY_NOT_TAKEN)
        assert c.predict_and_update(True) is False
        assert c.state == WEAKLY_TAKEN

    def test_wider_counter(self):
        c = SaturatingCounter(bits=3, init=4)
        assert c.prediction
        for _ in range(10):
            c.update(True)
        assert c.state == 7

    def test_three_bit_threshold(self):
        assert not SaturatingCounter(bits=3, init=3).prediction
        assert SaturatingCounter(bits=3, init=4).prediction

    def test_is_saturated(self):
        assert SaturatingCounter(init=0).is_saturated
        assert SaturatingCounter(init=3).is_saturated
        assert not SaturatingCounter(init=1).is_saturated

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    def test_rejects_out_of_range_init(self):
        with pytest.raises(ValueError):
            SaturatingCounter(init=4)
        with pytest.raises(ValueError):
            SaturatingCounter(init=-1)


class TestCounterTable:
    def test_size(self):
        assert len(CounterTable(6)) == 64

    def test_all_counters_initialized(self):
        t = CounterTable(4, init=WEAKLY_NOT_TAKEN)
        assert t.states == [WEAKLY_NOT_TAKEN] * 16

    def test_predict_update_roundtrip(self):
        t = CounterTable(4)
        assert t.predict(5)
        t.update(5, False)
        t.update(5, False)
        assert not t.predict(5)
        assert t.predict(6)  # neighbours untouched

    def test_predict_and_update_matches_separate_calls(self):
        a = CounterTable(4)
        b = CounterTable(4)
        outcomes = [True, False, False, True, False]
        got = [a.predict_and_update(3, o) for o in outcomes]
        want = []
        for o in outcomes:
            want.append(b.predict(3))
            b.update(3, o)
        assert got == want

    def test_update_saturates(self):
        t = CounterTable(2)
        for _ in range(10):
            t.update(0, True)
        assert t.states[0] == 3
        for _ in range(10):
            t.update(0, False)
        assert t.states[0] == 0

    def test_reset_restores_init(self):
        t = CounterTable(3, init=WEAKLY_TAKEN)
        t.update(0, True)
        t.reset()
        assert t.states == [WEAKLY_TAKEN] * 8

    def test_reset_with_new_init(self):
        t = CounterTable(3)
        t.reset(init=STRONGLY_NOT_TAKEN)
        assert t.states == [0] * 8
        t.update(1, True)
        t.reset()  # remembers the new init
        assert t.states == [0] * 8

    def test_fill(self):
        t = CounterTable(2)
        t.fill([0, 1, 2, 3])
        assert t.states == [0, 1, 2, 3]

    def test_fill_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            CounterTable(2).fill([0, 1, 2])

    def test_fill_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CounterTable(2).fill([0, 1, 2, 4])

    def test_as_array(self):
        t = CounterTable(2)
        t.fill([0, 1, 2, 3])
        assert np.array_equal(t.as_array(), np.array([0, 1, 2, 3], dtype=np.uint8))

    def test_as_array_is_a_copy(self):
        t = CounterTable(2)
        arr = t.as_array()
        arr[0] = 3
        assert t.states[0] == WEAKLY_TAKEN

    def test_size_bits(self):
        assert CounterTable(10).size_bits() == 2048
        assert CounterTable(4, bits=3).size_bits() == 48

    def test_zero_index_bits_single_counter(self):
        t = CounterTable(0)
        assert len(t) == 1
        t.update(0, True)
        assert t.predict(0)

    def test_rejects_negative_index_bits(self):
        with pytest.raises(ValueError):
            CounterTable(-1)

    def test_rejects_huge_tables(self):
        with pytest.raises(ValueError):
            CounterTable(30)

    def test_threshold_and_max_state(self):
        t = CounterTable(2, bits=3)
        assert t.threshold == 4
        assert t.max_state == 7
