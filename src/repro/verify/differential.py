"""Differential replay: oracle vs scalar engine vs batched kernels.

:func:`diff_spec` runs one spec over one trace through every available
implementation —

* the dict-based oracle (:mod:`repro.verify.oracle`),
* the predictor's step interface (``predict``/``update`` per branch),
* the predictor's batch ``simulate`` loop (what :func:`repro.sim.
  engine.run` uses),
* the gshare lane kernel or each available bi-mode kernel strategy,
  when the spec qualifies for one,
* every engine of the spec's registry lane kernel
  (:mod:`repro.sim.kernels`) for the ported schemes —

and reports whether all predictions agree, and if not, the index of
the first diverging branch together with each engine's prediction
there.  For schemes with detailed (Section-4) support, every engine
that can attribute accesses also carries its per-branch counter ids,
and the report checks those for divergence too — a kernel that
predicts correctly but attributes an access to the wrong counter is
still a divergence.  This is the debugging entry point when a kernel
regresses: the report names the branch to single-step, and the
test-suite fuzzers shrink their failing traces before producing it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.registry import make_predictor
from repro.sim import _cstep, kernels
from repro.sim.batch import gshare_lane_detailed, lane_for_spec
from repro.sim.batch_bimode import bimode_lane_detailed, bimode_lane_for_spec
from repro.sim.engine import run, run_steps
from repro.traces.record import BranchTrace
from repro.verify.oracle import (
    oracle_detailed,
    oracle_predictions,
    oracle_supports_detailed,
)

__all__ = ["EngineRun", "DifferentialReport", "diff_spec"]


@dataclass
class EngineRun:
    """One implementation's replay of the trace.

    ``counter_ids`` is present for engines that also attribute each
    access to a counter (the detailed/Section-4 contract).
    """

    engine: str
    predictions: np.ndarray
    counter_ids: Optional[np.ndarray] = None

    def rate(self, outcomes: np.ndarray) -> float:
        if len(outcomes) == 0:
            return 0.0
        return int(np.count_nonzero(self.predictions != outcomes)) / len(outcomes)


@dataclass
class DifferentialReport:
    """Outcome of replaying one (spec, trace) cell through every engine."""

    spec: str
    trace_name: str
    num_branches: int
    runs: List[EngineRun] = field(default_factory=list)
    first_divergence: Optional[int] = None
    divergence_detail: str = ""

    @property
    def agree(self) -> bool:
        return self.first_divergence is None

    def summary(self) -> str:
        engines = ", ".join(r.engine for r in self.runs)
        head = (
            f"spec {self.spec!r} on trace {self.trace_name!r} "
            f"({self.num_branches} branches; engines: {engines})"
        )
        if self.agree:
            return f"{head}: all engines agree"
        return f"{head}: {self.divergence_detail}"


def _bimode_strategies() -> List[str]:
    strategies = ["numpy", "python"]
    if _cstep.available():
        strategies.insert(0, "c")
    return strategies


def diff_spec(
    spec: str, trace: BranchTrace, include_kernels: bool = True
) -> DifferentialReport:
    """Replay ``spec`` over ``trace`` through every implementation.

    The oracle is always run and is the reference ordering: the report's
    ``first_divergence`` is the smallest branch index where *any* engine
    disagrees with any other (they either all match or the earliest
    mismatch is against the oracle, since agreement is transitive).
    """
    report = DifferentialReport(
        spec=spec, trace_name=trace.name or "anon", num_branches=len(trace)
    )
    detailed = oracle_supports_detailed(spec)
    if detailed:
        o_preds, o_ids = oracle_detailed(spec, trace)
        report.runs.append(EngineRun("oracle", o_preds, o_ids))
    else:
        report.runs.append(EngineRun("oracle", oracle_predictions(spec, trace)))
    report.runs.append(
        EngineRun("step", run_steps(make_predictor(spec), trace).predictions)
    )
    if detailed:
        predictor = make_predictor(spec)
        predictor.reset()
        scalar_detailed = predictor.simulate_detailed(trace)
        report.runs.append(
            EngineRun(
                "scalar",
                scalar_detailed.result.predictions,
                scalar_detailed.counter_ids,
            )
        )
    else:
        report.runs.append(
            EngineRun("scalar", run(make_predictor(spec), trace).predictions)
        )
    if include_kernels:
        glane = lane_for_spec(spec)
        if glane is not None:
            g_preds, g_ids = gshare_lane_detailed(glane, trace)
            report.runs.append(EngineRun("batch:gshare", g_preds, g_ids))
        blane = bimode_lane_for_spec(spec)
        if blane is not None:
            saved = os.environ.get("REPRO_BIMODE_KERNEL")
            try:
                for strategy in _bimode_strategies():
                    os.environ["REPRO_BIMODE_KERNEL"] = strategy
                    b_preds, b_ids = bimode_lane_detailed(blane, trace)
                    report.runs.append(
                        EngineRun(f"batch:bimode[{strategy}]", b_preds, b_ids)
                    )
            finally:
                if saved is None:
                    os.environ.pop("REPRO_BIMODE_KERNEL", None)
                else:
                    os.environ["REPRO_BIMODE_KERNEL"] = saved
        kind, lane = kernels.kernel_for_spec(spec)
        if kind in kernels.PORTED:
            entry = kernels.PORTED[kind]
            strategies = ["numpy"] if entry.numpy_ok(lane) else []
            if _cstep.available():
                strategies.insert(0, "c")
            for strategy in strategies:
                # lane runs carry counter ids too, so an attribution
                # regression diverges here even when predictions agree
                if entry.detailed is not None:
                    l_preds, l_ids = entry.detailed(lane, trace, strategy)
                    report.runs.append(
                        EngineRun(f"lane:{kind}[{strategy}]", l_preds, l_ids)
                    )
                else:  # pragma: no cover - meta-test keeps this dead
                    report.runs.append(
                        EngineRun(
                            f"lane:{kind}[{strategy}]",
                            entry.predictions(lane, trace, strategy),
                        )
                    )

    reference = report.runs[0]
    first: Optional[int] = None
    first_kind = "prediction"
    id_reference = next((r for r in report.runs if r.counter_ids is not None), None)
    for other in report.runs[1:]:
        diverging = np.flatnonzero(reference.predictions != other.predictions)
        if diverging.size and (first is None or diverging[0] < first):
            first = int(diverging[0])
            first_kind = "prediction"
        if id_reference is not None and other.counter_ids is not None:
            id_diverging = np.flatnonzero(
                id_reference.counter_ids != other.counter_ids
            )
            if id_diverging.size and (first is None or id_diverging[0] < first):
                first = int(id_diverging[0])
                first_kind = "counter-id"
    if first is not None:
        report.first_divergence = first
        pc = int(trace.pcs[first])
        outcome = bool(trace.outcomes[first])
        if first_kind == "counter-id":
            votes = ", ".join(
                f"{r.engine}=c{int(r.counter_ids[first])}"
                for r in report.runs
                if r.counter_ids is not None
            )
        else:
            votes = ", ".join(
                f"{r.engine}={'T' if r.predictions[first] else 'NT'}"
                for r in report.runs
            )
        report.divergence_detail = (
            f"first {first_kind} divergence at branch {first} "
            f"(pc={pc:#x}, outcome={'taken' if outcome else 'not-taken'}): {votes}"
        )
    return report
