"""Trace-driven simulation engine.

Thin orchestration over the predictor batch interface: reset, run,
(optionally) warm-up split.  All heavy lifting lives in the predictors'
``simulate`` fast paths; the engine guarantees the contract around them
(fresh state, consistent result packaging).
"""

from __future__ import annotations

from repro.core.interfaces import BranchPredictor, DetailedSimulation, SimulationResult
from repro.traces.record import BranchTrace

__all__ = ["run", "run_detailed", "run_steps"]


def run(
    predictor: BranchPredictor,
    trace: BranchTrace,
    reset: bool = True,
    warmup: int = 0,
) -> SimulationResult:
    """Simulate ``predictor`` over ``trace``.

    Parameters
    ----------
    reset:
        Restore power-on state first (default).  Pass ``False`` to
        continue from existing state (e.g. across trace chunks).
    warmup:
        If non-zero, the first ``warmup`` branches still train the
        predictor but are excluded from the returned result (the paper
        reports whole-trace rates, so the default is 0).
    """
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    if warmup > len(trace):
        raise ValueError(f"warmup ({warmup}) exceeds trace length ({len(trace)})")
    if reset:
        predictor.reset()
    result = predictor.simulate(trace)
    if warmup:
        result = SimulationResult(
            predictor_name=result.predictor_name,
            trace_name=result.trace_name,
            predictions=result.predictions[warmup:],
            outcomes=result.outcomes[warmup:],
        )
    return result


def run_detailed(
    predictor: BranchPredictor, trace: BranchTrace, reset: bool = True
) -> DetailedSimulation:
    """Simulate with per-access counter attribution (Section-4 analysis)."""
    if reset:
        predictor.reset()
    return predictor.simulate_detailed(trace)


def run_steps(
    predictor: BranchPredictor, trace: BranchTrace, reset: bool = True
) -> SimulationResult:
    """Simulate via the scalar step interface (reference semantics).

    Exists so tests can assert batch/step equivalence; production code
    should use :func:`run`.
    """
    if reset:
        predictor.reset()
    return BranchPredictor.simulate(predictor, trace)
