"""Misprediction breakdown by bias class (paper Section 4.3, Figures 7–8).

Every misprediction is attributed to the bias class (SNT / ST / WB) of
the substream it belongs to; the three contributions are reported as
percentages of all dynamic branches, so they sum to the scheme's overall
misprediction rate.  The paper reads these bars to show that:

* few-history gshare has the least strong-class error but large WB
  error (it fails to split weakly-biased branches into biased
  substreams);
* long-history gshare shrinks WB error but inflates ST/SNT error via
  destructive aliasing;
* bi-mode keeps the reduced WB error *and* reduces the strong-class
  error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bias import SNT, ST, WB, SubstreamAnalysis

__all__ = ["MispredictionBreakdown", "misprediction_breakdown"]


@dataclass(frozen=True)
class MispredictionBreakdown:
    """Misprediction contributions as fractions of all dynamic branches."""

    snt: float
    st: float
    wb: float
    total_branches: int

    @property
    def overall(self) -> float:
        """Total misprediction rate (= sum of the three classes)."""
        return self.snt + self.st + self.wb

    def as_dict(self) -> dict:
        return {"SNT": self.snt, "ST": self.st, "WB": self.wb}

    def __str__(self) -> str:
        return (
            f"SNT {100 * self.snt:.2f}%  ST {100 * self.st:.2f}%  "
            f"WB {100 * self.wb:.2f}%  (overall {100 * self.overall:.2f}%)"
        )


def misprediction_breakdown(analysis: SubstreamAnalysis) -> MispredictionBreakdown:
    """Attribute each misprediction to its substream's bias class."""
    total = int(analysis.stream_total.sum())
    if total == 0:
        return MispredictionBreakdown(snt=0.0, st=0.0, wb=0.0, total_branches=0)
    misses = analysis.stream_mispredicted.astype(np.float64)
    by_class = {
        cls: float(misses[analysis.stream_class == cls].sum()) / total
        for cls in (SNT, ST, WB)
    }
    return MispredictionBreakdown(
        snt=by_class[SNT], st=by_class[ST], wb=by_class[WB], total_branches=total
    )
