"""CLI smoke tests (fast paths only: tiny trace lengths)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_run(self):
        args = build_parser().parse_args(["run", "gshare:index=8", "xlisp"])
        assert args.command == "run"
        assert args.spec == "gshare:index=8"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bimode" in out and "gshare" in out and "xlisp" in out

    def test_run(self, capsys):
        assert main(["--length", "3000", "run", "gshare:index=8,hist=8", "xlisp"]) == 0
        out = capsys.readouterr().out
        assert "mispredict" in out

    def test_stats(self, capsys):
        assert main(["--length", "3000", "stats", "--suite", "cint95"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "static" in out

    def test_figure2_single_benchmark(self, capsys, tmp_path):
        csv = tmp_path / "fig2.csv"
        code = main(
            [
                "--length", "3000", "--csv", str(csv),
                "figure2", "--benchmark", "xlisp", "--sizes", "0.25", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gshare.best" in out and "bi-mode" in out
        assert csv.exists()

    def test_bias(self, capsys):
        assert main(["--length", "3000", "bias", "bimode:dir=6,hist=6,choice=6", "xlisp"]) == 0
        out = capsys.readouterr().out
        assert "dominant" in out and "WB" in out

    def test_breakdown(self, capsys):
        assert main(["--length", "3000", "breakdown", "xlisp", "--sizes", "8"]) == 0
        out = capsys.readouterr().out
        assert "SNT" in out and "bi-mode" in out

    def test_table4(self, capsys):
        assert main(["--length", "3000", "table4", "xlisp", "--index-bits", "8"]) == 0
        out = capsys.readouterr().out
        assert "history-indexed" in out and "bi-mode" in out

    def test_compare(self, capsys):
        code = main(
            [
                "--length", "3000", "compare", "xlisp",
                "gshare:index=8,hist=8", "bimode:dir=7,hist=7,choice=7",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gshare" in out and "bimode" in out and "KB" in out

    def test_aliasing(self, capsys):
        code = main(["--length", "3000", "aliasing", "gshare:index=8,hist=8", "xlisp"])
        assert code == 0
        out = capsys.readouterr().out
        assert "destructive" in out and "capacity" in out
