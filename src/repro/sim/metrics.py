"""Prediction-quality metrics.

The paper reports one number — the dynamic misprediction rate — but
downstream users usually also want per-static-branch breakdowns,
steady-state rates and rough pipeline impact, so those live here too.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.core.interfaces import SimulationResult

__all__ = [
    "misprediction_rate",
    "steady_state_rate",
    "per_branch_rates",
    "wilson_interval",
    "branch_penalty_cpi",
]


def misprediction_rate(result: SimulationResult) -> float:
    """Fraction of dynamic branches mispredicted (the paper's y-axis)."""
    return result.misprediction_rate


def steady_state_rate(result: SimulationResult, skip_fraction: float = 0.1) -> float:
    """Misprediction rate excluding the leading warm-up fraction."""
    if not 0.0 <= skip_fraction < 1.0:
        raise ValueError(f"skip_fraction must be in [0, 1), got {skip_fraction}")
    skip = int(len(result.outcomes) * skip_fraction)
    tail = result.mispredicted[skip:]
    if not len(tail):
        return 0.0
    return float(tail.mean())


def per_branch_rates(result: SimulationResult, pcs: np.ndarray) -> Dict[int, float]:
    """Misprediction rate per static branch.

    ``pcs`` is the trace's PC array (same order as the result).
    """
    pcs = np.asarray(pcs)
    if len(pcs) != result.num_branches:
        raise ValueError("pcs length must match the simulation result")
    unique, inverse = np.unique(pcs, return_inverse=True)
    totals = np.bincount(inverse, minlength=len(unique))
    misses = np.bincount(
        inverse, weights=result.mispredicted.astype(np.float64), minlength=len(unique)
    )
    return {
        int(pc): float(miss / total)
        for pc, miss, total in zip(unique.tolist(), misses.tolist(), totals.tolist())
    }


def wilson_interval(misses: int, total: int, z: float = 1.96):
    """Wilson score interval for a misprediction rate.

    Useful when comparing schemes on scaled-down traces: if two schemes'
    intervals overlap heavily the difference is generation noise.
    """
    if total < 0 or misses < 0 or misses > total:
        raise ValueError(f"invalid counts misses={misses}, total={total}")
    if total == 0:
        return (0.0, 0.0)
    p = misses / total
    denom = 1 + z * z / total
    center = (p + z * z / (2 * total)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / total + z * z / (4 * total * total))
    return (max(0.0, center - margin), min(1.0, center + margin))


def branch_penalty_cpi(
    result: SimulationResult,
    branch_fraction: float = 0.2,
    misprediction_penalty: float = 7.0,
) -> float:
    """Approximate CPI added by branch mispredictions.

    ``branch_fraction`` is conditional branches per instruction (~1 in 5
    for integer code); ``misprediction_penalty`` the pipeline-refill
    cycles (7 on a Pentium-Pro-class machine).  A rough translation of
    prediction accuracy into performance, for the examples.
    """
    if not 0.0 < branch_fraction <= 1.0:
        raise ValueError(f"branch_fraction must be in (0, 1], got {branch_fraction}")
    if misprediction_penalty < 0:
        raise ValueError("misprediction_penalty must be >= 0")
    return result.misprediction_rate * branch_fraction * misprediction_penalty
