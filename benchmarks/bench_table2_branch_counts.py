"""Table 2 — static and dynamic conditional branch counts.

Regenerates the paper's Table 2 rows for all 14 benchmarks, reporting
the paper's counts next to the scaled synthetic traces' measured counts
(the substitution scales dynamic counts by ~1/40 and the largest static
footprints by ``static_scale``; see DESIGN.md §2).

Shape checks: measured static counts track the scaled budgets, and the
*ordering* of benchmarks by footprint matches the paper.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_table, load_bench_trace
from repro.traces.stats import compute_stats
from repro.workloads.profiles import ALL_PROFILES, get_profile
from repro.workloads.suite import suite_names


def _rows():
    rows = []
    for suite in ("cint95", "ibs"):
        for name in suite_names(suite):
            profile = get_profile(name)
            trace = load_bench_trace(name)
            stats = compute_stats(trace)
            rows.append(
                [
                    suite,
                    name,
                    profile.paper_static,
                    profile.paper_dynamic,
                    profile.static_branches,
                    stats.static_branches,
                    stats.dynamic_branches,
                    f"{100 * stats.taken_rate:.1f}%",
                    f"{100 * stats.strongly_biased_fraction:.1f}%",
                ]
            )
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_branch_counts(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    emit_table(
        "table2_branch_counts",
        "Table 2 — branch counts (paper vs scaled synthetic traces)",
        [
            "suite", "benchmark",
            "paper static", "paper dynamic",
            "scaled budget", "measured static", "measured dynamic",
            "taken", "strongly-biased dyn",
        ],
        rows,
    )

    by_name = {row[1]: row for row in rows}
    for name, row in by_name.items():
        budget, measured = row[4], row[5]
        # the walk must execute nearly the whole static footprint
        assert measured >= 0.85 * budget, f"{name}: poor static coverage"
        assert measured <= budget

    # footprint ordering preserved: gcc/real_gcc largest, compress smallest
    assert by_name["gcc"][5] > by_name["xlisp"][5]
    assert by_name["real_gcc"][5] > by_name["verilog"][5]
    assert by_name["compress"][5] < by_name["perl"][5]
