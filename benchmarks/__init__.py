"""Paper-reproduction benchmark harness (one module per table/figure)."""
