"""Figure 7 — misprediction contributed by bias class, gcc.

Three schemes at three second-level sizes (256, 1K, 32K counters):

* ``gshare(few)`` — fewer history bits (address-indexed flavour);
* ``gshare(full)`` — full history (history-indexed flavour);
* ``bi-mode`` — direction banks at half size plus half-size choice,
  the paper's 'choice predictor half its second-level table' setup.

Each bar decomposes the total misprediction rate into the SNT, ST and
WB substream classes.  Paper shapes:

* the few-history gshare always has the least strong-class (SNT+ST)
  error but the most WB error;
* the full-history gshare trades WB error for strong-class error;
* bi-mode keeps the low WB error while reducing strong-class error in
  most configurations;
* everything improves with size.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_table, load_bench_trace
from repro.analysis.bias import analyze_substreams
from repro.analysis.breakdown import misprediction_breakdown
from repro.core.registry import make_predictor
from repro.sim.engine import run_detailed

#: (log2 counters, few-history bits) per the paper's 256 / 1K / 32K axis;
#: paper used gshare(2)/gshare(8), gshare(4)/gshare(10), gshare(9)/gshare(15).
SIZES = [(8, 2), (10, 4), (15, 9)]
BENCHMARK = "gcc"


def _schemes(bits, few):
    return [
        (f"gshare({few})", f"gshare:index={bits},hist={few}"),
        (f"gshare({bits})", f"gshare:index={bits},hist={bits}"),
        (
            f"bi-mode({bits - 1})",
            f"bimode:dir={bits - 1},hist={bits - 1},choice={bits - 2}",
        ),
    ]


def compute_breakdowns(trace, sizes):
    out = []
    for bits, few in sizes:
        for label, spec in _schemes(bits, few):
            detailed = run_detailed(make_predictor(spec), trace)
            breakdown = misprediction_breakdown(analyze_substreams(detailed))
            out.append((1 << bits, label, breakdown))
    return out


@pytest.mark.benchmark(group="fig7")
def test_fig7_gcc_breakdown(benchmark):
    trace = load_bench_trace(BENCHMARK)
    results = benchmark.pedantic(
        compute_breakdowns, args=(trace, SIZES), rounds=1, iterations=1
    )

    rows = [
        [
            counters,
            label,
            f"{100 * b.snt:.2f}%",
            f"{100 * b.st:.2f}%",
            f"{100 * b.wb:.2f}%",
            f"{100 * b.overall:.2f}%",
        ]
        for counters, label, b in results
    ]
    emit_table(
        "fig7_gcc_breakdown",
        f"Figure 7 — misprediction by bias class, {BENCHMARK}",
        ["counters", "scheme", "SNT", "ST", "WB", "overall"],
        rows,
    )

    def strong(b):
        return b.snt + b.st

    by_size = {}
    for counters, label, b in results:
        by_size.setdefault(counters, []).append((label, b))

    for counters, entries in by_size.items():
        few_b = entries[0][1]
        full_b = entries[1][1]
        bimode_b = entries[2][1]
        # few-history: least strong-class error (0.5pt tolerance at the
        # largest size, where aliasing is gone and the remaining
        # strong-class error is cold-start noise on the scaled traces),
        # most WB error
        assert strong(few_b) <= strong(full_b) + 0.005, counters
        assert few_b.wb >= full_b.wb - 1e-9, counters
        # bi-mode: strong-class error below full-history gshare
        assert strong(bimode_b) < strong(full_b), counters
        # bi-mode keeps the WB advantage of history
        assert bimode_b.wb <= few_b.wb + 1e-9, counters

    # everything improves with size (compare best overall at 256 vs 32K)
    small = min(b.overall for _, b in by_size[256])
    large = min(b.overall for _, b in by_size[32768])
    assert large < small
