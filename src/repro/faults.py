"""Deterministic fault injection for robustness testing.

The fault-tolerant sweep machinery (supervised workers, retries, the
sweep journal, degradation events) is only trustworthy if its failure
paths are exercised end-to-end — including inside real worker
processes.  This module provides a small, deterministic injector that
production code calls at named *fault points* and tests arm through a
single environment variable, so the same directives reach both the
parent process and every pool worker (which inherit the environment).

Directive grammar (``$REPRO_FAULTS``, semicolon-separated)::

    site:action[:key=value,...]

    REPRO_FAULTS="worker:exit:bench=gcc,nth=1"
    REPRO_FAULTS="evaluate:raise:bench=go,where=worker"
    REPRO_FAULTS="worker:sleep:seconds=0.5,nth=1;evaluate:raise:nth=3"

Sites are the names production code passes to :func:`fault_point`
(``worker`` at worker-task entry, ``evaluate`` where rate cells are
actually simulated, ``detailed`` before each Section-4 analysis cell,
``materialize`` in the trace store's lock-winning generation path, and
the sweep service's lifecycle: ``service.accept`` as a request is
parsed, ``service.dispatch`` as the scheduler hands a task to the
pool, ``service.persist`` on every job-manifest write).
Actions:

* ``raise``  — raise :class:`FaultInjected`;
* ``exit``   — hard-kill the current process (``os._exit``).  Only ever
  fires inside a pool worker, never in the parent, regardless of
  ``where`` — killing the orchestrator is not a scenario we test;
* ``sleep``  — block for ``seconds`` (drives task-timeout paths);
* ``sigint`` — send ``SIGINT`` to the current process (drives the
  journal's signal-safe flush path).

Options: ``nth=N`` fires only on the Nth matching hit counted in this
process (workers count independently — a reseeded worker starts at
zero, which is exactly how "kill the worker on its first task" stays
deterministic across retries); ``bench=NAME`` restricts to matching
``bench`` context; ``where=worker|parent|any`` (default ``any``)
restricts by process role.

Independent of injection, setting ``$REPRO_FAULT_TRACE`` to a directory
makes every fault point append one line to a per-PID log file.  Tests
use this as cross-process call-count instrumentation, e.g. to assert a
benchmark whose worker succeeded is *not* recomputed after another
worker crashes.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FaultInjected",
    "FaultRule",
    "parse_faults",
    "fault_point",
    "in_worker",
    "inject",
    "traced",
    "trace_counts",
    "corrupt_cache_file",
    "deny_compiler",
]

ENV_VAR = "REPRO_FAULTS"
TRACE_VAR = "REPRO_FAULT_TRACE"

_ACTIONS = ("raise", "exit", "sleep", "sigint")


class FaultInjected(RuntimeError):
    """The error raised by an armed ``raise`` directive."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed fault directive."""

    site: str
    action: str
    nth: Optional[int] = None
    bench: Optional[str] = None
    where: str = "any"
    seconds: float = 0.0

    def matches(self, site: str, ctx: Dict[str, object]) -> bool:
        if site != self.site:
            return False
        if self.bench is not None and ctx.get("bench") != self.bench:
            return False
        if self.where == "worker" and not in_worker():
            return False
        if self.where == "parent" and in_worker():
            return False
        return True


def parse_faults(spec: str) -> List[FaultRule]:
    """Parse a ``$REPRO_FAULTS`` directive string (raises on junk)."""
    rules: List[FaultRule] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2 or len(parts) > 3:
            raise ValueError(f"fault directive must be site:action[:opts], got {chunk!r}")
        site, action = parts[0].strip(), parts[1].strip().lower()
        if not site:
            raise ValueError(f"fault directive has an empty site: {chunk!r}")
        if action not in _ACTIONS:
            raise ValueError(
                f"fault action must be one of {_ACTIONS}, got {action!r}"
            )
        nth: Optional[int] = None
        bench: Optional[str] = None
        where = "any"
        seconds = 0.0
        if len(parts) == 3 and parts[2].strip():
            for item in parts[2].split(","):
                if "=" not in item:
                    raise ValueError(f"fault option must be key=value, got {item!r}")
                key, value = (s.strip() for s in item.split("=", 1))
                if key == "nth":
                    nth = int(value)
                    if nth < 1:
                        raise ValueError(f"nth must be >= 1, got {nth}")
                elif key == "bench":
                    bench = value
                elif key == "where":
                    if value not in ("any", "worker", "parent"):
                        raise ValueError(f"where must be any/worker/parent, got {value!r}")
                    where = value
                elif key == "seconds":
                    seconds = float(value)
                else:
                    raise ValueError(f"unknown fault option {key!r} in {chunk!r}")
        rules.append(
            FaultRule(
                site=site, action=action, nth=nth, bench=bench, where=where,
                seconds=seconds,
            )
        )
    return rules


def in_worker() -> bool:
    """Whether this process is a multiprocessing child (a pool worker)."""
    return multiprocessing.parent_process() is not None


# Compiled rules are cached on the exact spec string; hit counters are
# per (process, spec) so a fresh worker — or a re-armed spec — counts
# from zero.
_compiled_for: Optional[str] = None
_compiled: List[FaultRule] = []
_hits: Dict[int, int] = {}


def _rules() -> List[FaultRule]:
    global _compiled_for, _compiled, _hits
    spec = os.environ.get(ENV_VAR, "")
    if spec != _compiled_for:
        _compiled = parse_faults(spec) if spec.strip() else []
        _compiled_for = spec
        _hits = {}
    return _compiled


def _trace(site: str, ctx: Dict[str, object]) -> None:
    root = os.environ.get(TRACE_VAR, "").strip()
    if not root:
        return
    try:
        path = Path(root)
        path.mkdir(parents=True, exist_ok=True)
        extras = " ".join(f"{k}={v}" for k, v in sorted(ctx.items()))
        line = f"{site} {extras}".rstrip() + "\n"
        # O_APPEND single-write: concurrent workers never interleave lines.
        fd = os.open(path / f"{os.getpid()}.log", os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
    except OSError:  # pragma: no cover - tracing must never break the sweep
        pass


def _fire(rule: FaultRule) -> None:
    if rule.action == "raise":
        raise FaultInjected(
            f"injected fault at {rule.site}"
            + (f" (bench={rule.bench})" if rule.bench else "")
        )
    if rule.action == "exit":
        if in_worker():  # never hard-kill the orchestrating process
            os._exit(87)
        return
    if rule.action == "sleep":
        time.sleep(rule.seconds)
        return
    if rule.action == "sigint":
        os.kill(os.getpid(), signal.SIGINT)


def fault_point(site: str, **ctx) -> None:
    """Declare an injectable point in production code.

    Free when ``$REPRO_FAULTS`` and ``$REPRO_FAULT_TRACE`` are unset
    (one env read each).  With a trace directory set, logs the hit;
    with matching armed directives, triggers their actions.
    """
    _trace(site, ctx)
    rules = _rules()
    if not rules:
        return
    for index, rule in enumerate(rules):
        if not rule.matches(site, ctx):
            continue
        _hits[index] = _hits.get(index, 0) + 1
        if rule.nth is not None and _hits[index] != rule.nth:
            continue
        _fire(rule)


@contextmanager
def inject(spec: str):
    """Arm fault directives for the duration of the block (parent side).

    Worker processes created inside the block inherit the directives
    through the environment.  Hit counters restart on entry.
    """
    parse_faults(spec)  # fail fast on junk before arming anything
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = spec
    _rules()  # recompile now so counters reset even if spec == previous
    global _hits
    _hits = {}
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
        _rules()


@contextmanager
def traced(root: os.PathLike):
    """Log every fault-point hit under ``root`` for the block."""
    previous = os.environ.get(TRACE_VAR)
    os.environ[TRACE_VAR] = str(root)
    try:
        yield Path(root)
    finally:
        if previous is None:
            os.environ.pop(TRACE_VAR, None)
        else:
            os.environ[TRACE_VAR] = previous


def trace_counts(
    root: os.PathLike, site: Optional[str] = None
) -> Dict[Tuple[str, str], int]:
    """Aggregate trace logs across all processes.

    Returns ``{(site, bench): hits}`` (bench ``""`` when the fault point
    carried none), summed over every per-PID log file under ``root``.
    """
    counts: Dict[Tuple[str, str], int] = {}
    root = Path(root)
    if not root.is_dir():
        return counts
    for log in sorted(root.glob("*.log")):
        for line in log.read_text().splitlines():
            fields = line.split()
            if not fields:
                continue
            hit_site = fields[0]
            if site is not None and hit_site != site:
                continue
            bench = ""
            for extra in fields[1:]:
                if extra.startswith("bench="):
                    bench = extra[len("bench="):]
            key = (hit_site, bench)
            counts[key] = counts.get(key, 0) + 1
    return counts


def corrupt_cache_file(cache, tkey: str, payload: str = "{corrupt! not json") -> Path:
    """Overwrite one result-cache table with garbage (crash simulation)."""
    path = cache._path(tkey)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(payload)
    cache._loaded.pop(tkey, None)  # force a reload from the corrupt file
    return path


@contextmanager
def deny_compiler():
    """Pretend no C compiler exists for the duration of the block."""
    previous = os.environ.get("REPRO_NO_CC")
    os.environ["REPRO_NO_CC"] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_NO_CC", None)
        else:
            os.environ["REPRO_NO_CC"] = previous
