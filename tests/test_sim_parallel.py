"""Unit tests for process-parallel sweep execution."""

import os

import pytest

from repro.sim.parallel import (
    TaskPolicy,
    TraceRecipe,
    effective_jobs,
    evaluate_matrix_parallel,
    parallel_jobs,
    recipe_of,
)
from repro.sim.runner import ResultCache, evaluate_matrix, evaluate_specs, trace_key
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile
from tests.conftest import make_toy_trace

SPECS = [
    "gshare:index=8,hist=8",
    "gshare:index=8,hist=2",
    "bimode:dir=6,hist=6,choice=6",
]


@pytest.fixture(scope="module")
def workload_pair():
    return {
        name: generate_trace(get_profile(name), length=8_000, seed=5)
        for name in ("xlisp", "compress")
    }


class TestTraceRecipe:
    def test_generated_trace_has_recipe(self, workload_pair):
        trace = workload_pair["xlisp"]
        assert recipe_of(trace) == TraceRecipe(name="xlisp", length=8_000, seed=5)

    def test_toy_trace_has_none(self):
        assert recipe_of(make_toy_trace(length=100)) is None

    def test_unknown_profile_name_has_none(self, workload_pair):
        trace = workload_pair["xlisp"]
        renamed = type(trace)(
            pcs=trace.pcs, outcomes=trace.outcomes, name="not-a-profile"
        )
        renamed.metadata.update(trace.metadata)
        assert recipe_of(renamed) is None

    def test_anonymous_trace_has_none(self, workload_pair):
        trace = workload_pair["xlisp"]
        anon = type(trace)(pcs=trace.pcs, outcomes=trace.outcomes, name="")
        anon.metadata.update(trace.metadata)
        assert recipe_of(anon) is None


class TestJobsKnob:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert parallel_jobs() == 1
        assert parallel_jobs(default=3) == 3

    def test_explicit_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert parallel_jobs() == 4

    @pytest.mark.parametrize("env", ["0", "-1", "auto", "AUTO"])
    def test_zero_and_auto_mean_per_cpu(self, monkeypatch, env):
        monkeypatch.setenv("REPRO_JOBS", env)
        assert parallel_jobs() == (os.cpu_count() or 1)

    @pytest.mark.parametrize("env", ["many", "2.5", "1 2", "0x2"])
    def test_junk_raises(self, monkeypatch, env):
        monkeypatch.setenv("REPRO_JOBS", env)
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            parallel_jobs()

    def test_whitespace_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "   ")
        assert parallel_jobs() == 1
        assert parallel_jobs(default=4) == 4

    def test_surrounding_whitespace_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", " 3 ")
        assert parallel_jobs() == 3

    def test_default_never_below_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert parallel_jobs(default=0) == 1
        assert parallel_jobs(default=-2) == 1

    def test_effective_jobs_defers_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert effective_jobs(None) == 5
        assert effective_jobs(2) == 2
        assert effective_jobs(0) == (os.cpu_count() or 1)

    def test_effective_jobs_negative_means_per_cpu(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert effective_jobs(-3) == (os.cpu_count() or 1)
        assert effective_jobs(None) == 1


class TestParallelMatrix:
    def test_matches_serial(self, workload_pair, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        serial = evaluate_matrix(
            SPECS, workload_pair, cache=ResultCache(tmp_path / "a"), jobs=1
        )
        parallel = evaluate_matrix_parallel(
            SPECS, workload_pair, cache=ResultCache(tmp_path / "b"), jobs=2
        )
        assert parallel == serial

    def test_evaluate_matrix_dispatches_on_jobs(self, workload_pair, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        via_entry = evaluate_matrix(
            SPECS, workload_pair, cache=ResultCache(tmp_path / "c"), jobs=2
        )
        serial = evaluate_matrix(SPECS, workload_pair, jobs=1)
        assert via_entry == serial

    def test_recipeless_traces_run_locally(self, tmp_path):
        toys = {"t1": make_toy_trace(length=500, seed=1), "t2": make_toy_trace(length=500, seed=2)}
        toys["t1"].name, toys["t2"].name = "t1", "t2"
        parallel = evaluate_matrix_parallel(SPECS, toys, jobs=4)
        serial = {
            spec: {b: evaluate_specs([spec], t)[spec] for b, t in toys.items()}
            for spec in SPECS
        }
        assert parallel == serial

    def test_merges_into_cache(self, workload_pair, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cache = ResultCache(tmp_path / "d")
        matrix = evaluate_matrix_parallel(SPECS, workload_pair, cache=cache, jobs=2)
        for bench, trace in workload_pair.items():
            for spec in SPECS:
                assert cache.get(spec, trace_key(trace)) == matrix[spec][bench]
        # and a fresh instance reads the same cells back from disk
        reread = ResultCache(tmp_path / "d")
        tkey = trace_key(workload_pair["xlisp"])
        assert reread.get(SPECS[0], tkey) == matrix[SPECS[0]]["xlisp"]

    def test_cached_cells_short_circuit(self, workload_pair, tmp_path):
        cache = ResultCache(tmp_path)
        poisoned = 0.123456
        for trace in workload_pair.values():
            cache.put_many(trace_key(trace), {spec: poisoned for spec in SPECS})
        matrix = evaluate_matrix_parallel(SPECS, workload_pair, cache=cache, jobs=2)
        assert all(
            rate == poisoned for rates in matrix.values() for rate in rates.values()
        )

    def test_progress_covers_every_cell(self, workload_pair, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        calls = []
        evaluate_matrix_parallel(
            SPECS,
            workload_pair,
            jobs=2,
            progress=lambda spec, bench, rate: calls.append((spec, bench)),
        )
        assert sorted(calls) == sorted(
            (spec, bench) for spec in SPECS for bench in workload_pair
        )


class TestSerialFallback:
    def test_pool_unavailable_falls_back_to_serial(self, workload_pair, monkeypatch):
        """A platform without working process pools degrades to the
        serial path — same rates, no attempts charged, event recorded."""
        import repro.sim.parallel as par
        from repro import health

        def _no_pool(*args, **kwargs):
            raise OSError("process pools unavailable")

        monkeypatch.setattr(par, "ProcessPoolExecutor", _no_pool)
        health.clear()
        try:
            result = par.evaluate_matrix_parallel(SPECS, workload_pair, jobs=2)
            events = health.events(component="parallel-pool")
        finally:
            health.clear()
        serial = evaluate_matrix(SPECS, workload_pair, jobs=1)
        assert result == serial
        assert result.failures == []
        assert any(
            e.actual == "serial" and e.severity == "degraded" for e in events
        )

    def test_mixed_recipe_and_recipeless_traces(self, workload_pair, tmp_path, monkeypatch):
        """Recipe-less traces run in-parent while recipe traces use the
        pool; the merged matrix covers both."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        toy = make_toy_trace(length=500, seed=3)
        toy.name = "toy"
        mixed = dict(workload_pair)
        mixed["toy"] = toy
        parallel = evaluate_matrix_parallel(SPECS, mixed, jobs=2)
        serial = evaluate_matrix(SPECS, mixed, jobs=1)
        assert parallel == serial
        assert parallel.failures == []


class TestTaskPolicy:
    def test_defaults(self, monkeypatch):
        for var in ("REPRO_TASK_TIMEOUT", "REPRO_TASK_RETRIES", "REPRO_TASK_BACKOFF"):
            monkeypatch.delenv(var, raising=False)
        policy = TaskPolicy.from_env()
        assert policy.timeout is None
        assert policy.retries == 2
        assert policy.backoff == 0.1

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "5")
        monkeypatch.setenv("REPRO_TASK_BACKOFF", "0")
        policy = TaskPolicy.from_env()
        assert policy.timeout == 12.5
        assert policy.retries == 5
        assert policy.backoff == 0.0

    def test_zero_timeout_means_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert TaskPolicy.from_env().timeout is None

    def test_negative_retries_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "-4")
        assert TaskPolicy.from_env().retries == 0

    @pytest.mark.parametrize(
        "var", ["REPRO_TASK_TIMEOUT", "REPRO_TASK_RETRIES", "REPRO_TASK_BACKOFF"]
    )
    def test_junk_raises_with_knob_name(self, monkeypatch, var):
        monkeypatch.setenv(var, "soonish")
        with pytest.raises(ValueError, match=var):
            TaskPolicy.from_env()
