"""Build synthetic programs from benchmark profiles.

:func:`build_program` turns a :class:`~repro.workloads.profiles.BenchmarkProfile`
into a concrete :class:`~repro.workloads.cfg.Program` — deterministically
in ``(profile, seed)`` — and :func:`generate_trace` runs it.

Construction sketch:

* regions are added until the profile's static branch budget (the
  paper's Table 2 static count) is consumed exactly;
* each region gets a geometric-ish body size, an optional loop
  back-edge, and body behaviours sampled from the profile's mix;
* regions are laid out densely in the user address space (kernel
  regions, for IBS-style profiles, above ``kernel_base``), so low-order
  address-bit collisions — the raw material of PHT aliasing — occur at
  realistic rates;
* dispatcher weights are Zipf with the profile's skew, assigned in a
  shuffled order so hotness is uncorrelated with address and behaviour.
"""

from __future__ import annotations

import os
from random import Random
from typing import Dict, List, Tuple
from zlib import crc32

import numpy as np

from repro.traces.record import BranchTrace
from repro.workloads.cfg import BranchSite, Program, Region, zipf_weights
from repro.workloads.components import (
    BiasedBehavior,
    BranchBehavior,
    CorrelatedBehavior,
    LoopBehavior,
    PatternBehavior,
)
from repro.workloads.profiles import BenchmarkProfile

__all__ = ["build_program", "generate_trace", "KERNEL_BASE"]

#: Word address where the synthetic kernel text segment starts
#: (recorded in trace metadata for the user/kernel split filter).
KERNEL_BASE = 1 << 22


# Region types and their behaviour mixes (biased, correlated, pattern,
# weak).  Hard-to-predict branches cluster in real code — most loops and
# guard-heavy regions contain none — so instead of sprinkling the
# profile mix uniformly (which would poison nearly every history window
# with a random bit), each region draws a *type* and samples sites from
# that type's mix.  Type probabilities are solved per profile so the
# aggregate site mix still matches the profile.
_REGION_TYPES = {
    "biased": (0.90, 0.06, 0.04, 0.00),
    "correlated": (0.42, 0.52, 0.06, 0.00),
    "hard": (0.28, 0.14, 0.04, 0.54),
    "pattern": (0.55, 0.13, 0.32, 0.00),
}


def _region_type_weights(profile: BenchmarkProfile):
    """Least-squares type probabilities reproducing the profile mix."""
    names = list(_REGION_TYPES)
    matrix = np.array([_REGION_TYPES[t] for t in names]).T  # families x types
    target = np.array(
        [profile.mix.biased, profile.mix.correlated, profile.mix.pattern, profile.mix.weak]
    )
    weights, *_ = np.linalg.lstsq(matrix, target, rcond=None)
    weights = np.clip(weights, 0.0, None)
    if weights.sum() <= 0:
        weights = np.ones(len(names))
    weights = weights / weights.sum()
    return names, weights.tolist()


def _sample_site_behavior(
    profile: BenchmarkProfile, type_mix, rng: Random
) -> BranchBehavior:
    """One body-site behaviour drawn from a region type's mix."""
    biased, correlated, pattern, _weak = type_mix
    r = rng.random()
    if r < biased:
        # strongly biased static branch; direction split by taken_bias_fraction
        strength = profile.strong_bias + rng.uniform(-0.005, 0.004)
        strength = min(0.9995, max(0.92, strength))
        if rng.random() < profile.taken_bias_fraction:
            return BiasedBehavior(strength, burst_length=12)
        return BiasedBehavior(1.0 - strength, burst_length=12)
    r -= biased
    if r < correlated:
        depth = rng.randint(*profile.correlated_depth)
        return CorrelatedBehavior.random(
            depth, rng, noise=profile.correlated_noise, burst_length=16
        )
    r -= correlated
    if r < pattern:
        length = rng.randint(*profile.pattern_length)
        body = [rng.random() < 0.5 for _ in range(length)]
        if all(body) or not any(body):
            body[0] = not body[0]  # force a genuine pattern
        return PatternBehavior(body)
    # remainder: intrinsically weakly-biased branches
    return BiasedBehavior(rng.uniform(*profile.weak_p_range))


def build_program(profile: BenchmarkProfile, seed: int = 0) -> Program:
    """Construct the synthetic program for ``profile``.

    The program has exactly ``profile.static_branches`` static branch
    sites.  Deterministic in ``(profile.name, seed)``.
    """
    rng = Random((crc32(profile.name.encode()) << 8) ^ seed)
    budget = profile.static_branches
    if budget < 1:
        raise ValueError(f"profile {profile.name!r} has no static branches")

    type_names, type_weights = _region_type_weights(profile)
    regions: List[Region] = []
    region_types: List[str] = []
    next_address = 64  # leave the zero page empty
    remaining = budget
    while remaining > 0:
        region_type = rng.choices(type_names, weights=type_weights, k=1)[0]
        type_mix = _REGION_TYPES[region_type]
        body_size = max(1, round(rng.gauss(profile.region_size, profile.region_size / 3)))
        wants_loop = rng.random() < profile.loop_fraction
        sites_needed = body_size + (1 if wants_loop else 0)
        if sites_needed > remaining:
            # last region: consume the remainder exactly
            wants_loop = wants_loop and remaining >= 2
            body_size = remaining - (1 if wants_loop else 0)
            if body_size < 1:
                wants_loop = False
                body_size = remaining

        is_kernel = rng.random() < profile.kernel_fraction
        base = next_address if not is_kernel else next_address + KERNEL_BASE

        body = [
            BranchSite(
                address=base + 2 * i,
                behavior=_sample_site_behavior(profile, type_mix, rng),
            )
            for i in range(body_size)
        ]
        loop_site = None
        if wants_loop:
            trip = max(2, round(rng.gauss(profile.loop_trip, profile.loop_trip / 3)))
            loop_site = BranchSite(
                address=base + 2 * body_size + 1,  # odd ⇒ backward, for BTFNT
                behavior=LoopBehavior(
                    trip_count=trip, jitter=profile.loop_jitter, resample_prob=0.05
                ),
            )
        regions.append(Region(body=body, loop=loop_site))
        region_types.append(region_type)

        used = body_size + (1 if loop_site is not None else 0)
        remaining -= used
        next_address += 2 * used + 2 + rng.choice((0, 2, 4, 8))

    # Deterministic cyclic schedule: the hottest regions form a ring
    # (the program's main loop); every cold region hangs off the ring in
    # a short excursion chain, visited on a fixed cadence.  Control flow
    # is then overwhelmingly repetitive — the property that makes global
    # history worth storing — while still covering every region.
    #
    # Hard (weakly-biased) regions mostly stay out of the ring: a single
    # data-dependent branch inside the hot loop would re-randomize every
    # history window each lap.  Profiles with a genuinely large weak
    # population (go) do place hard regions in the ring, which is
    # exactly what makes them hard for every predictor.
    num_regions = len(regions)
    order = list(range(num_regions))
    rng.shuffle(order)
    ring_size = max(2, min(num_regions, round(num_regions**0.5)))
    ring_hard = round(ring_size * max(0.0, profile.mix.weak - 0.1))
    hard = [r for r in order if region_types[r] == "hard"]
    clean = [r for r in order if region_types[r] != "hard"]
    ring_hard = min(ring_hard, len(hard))
    ring = clean[: ring_size - ring_hard] + hard[:ring_hard]
    if len(ring) < 2:  # tiny programs: take whatever there is
        ring = order[: max(2, min(num_regions, ring_size))]
    ring_size = len(ring)
    rng.shuffle(ring)
    in_ring = set(ring)
    cold = [r for r in order if r not in in_ring]

    # popularity (start point / random jumps) follows the structure:
    # ring regions first, then cold, Zipf-decayed
    weights = zipf_weights(num_regions, skew=profile.zipf_skew)
    shuffled = [0.0] * num_regions
    for rank, region_index in enumerate(ring + cold):
        shuffled[region_index] = float(weights[rank])

    # partition cold regions into excursion chains of 1-3
    chains: List[List[int]] = []
    i = 0
    while i < len(cold):
        chain_len = min(rng.randint(1, 3), len(cold) - i)
        chains.append(cold[i : i + chain_len])
        i += chain_len

    schedule: List[List[int]] = [[] for _ in range(num_regions)]
    host_chains: List[List[List[int]]] = [[] for _ in range(ring_size)]
    for j, chain in enumerate(chains):
        host_chains[j % ring_size].append(chain)

    for k, region_index in enumerate(ring):
        ring_next = ring[(k + 1) % ring_size]
        # bursty regions re-execute a couple of times before moving on
        burst = rng.randint(2, 3) if rng.random() < profile.repeat_prob else 1
        pattern = [region_index] * (burst - 1) + [ring_next]
        entries: List[int] = []
        my_chains = host_chains[k]
        if my_chains:
            for chain in my_chains:
                entries.extend(pattern * 5)  # several clean laps per excursion
                entries.extend([region_index] * (burst - 1) + [chain[0]])
                # wire the chain: each member falls through, the last
                # returns to the ring after this host
                for a, b in zip(chain, chain[1:]):
                    schedule[a] = [b]
                schedule[chain[-1]] = [ring_next]
        else:
            entries.extend(pattern)
        schedule[region_index] = entries

    return Program(
        regions=regions,
        schedule=schedule,
        weights=shuffled,
        jump_prob=profile.jump_prob,
        name=profile.name,
        metadata={
            "suite": profile.suite,
            "kernel_base": KERNEL_BASE,
            "profile_seed": seed,
        },
    )


# Programs are deterministic in (profile, seed) and their construction
# (plus the fast path's replay plan, cached on the instance) costs tens
# of milliseconds — noticeable once generation itself is fast.  Warm
# generations reuse the built program; ``Program.run`` resets behaviour
# state on entry, so reuse cannot change any trace.
_PROGRAM_CACHE: Dict[Tuple[str, int], Program] = {}
_PROGRAM_CACHE_MAX = 32


def _cached_program(profile: BenchmarkProfile, seed: int) -> Program:
    key = (profile.name, seed)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = build_program(profile, seed=seed)
        if len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_MAX:
            _PROGRAM_CACHE.pop(next(iter(_PROGRAM_CACHE)))
        _PROGRAM_CACHE[key] = program
    return program


def _tracegen_mode() -> str:
    """Engine choice from ``$REPRO_TRACEGEN`` (``fast`` or ``scalar``)."""
    mode = os.environ.get("REPRO_TRACEGEN", "").strip().lower() or "fast"
    if mode not in ("fast", "scalar"):
        raise ValueError(
            f"REPRO_TRACEGEN must be 'fast' or 'scalar', got {mode!r}"
        )
    return mode


def generate_trace(
    profile: BenchmarkProfile, length: int | None = None, seed: int = 0
) -> BranchTrace:
    """Generate the benchmark's branch trace.

    ``length`` defaults to the profile's scaled dynamic count.  The
    program-build seed and the run seed are derived from ``seed`` so one
    integer reproduces the whole trace.

    Generation dispatches on ``$REPRO_TRACEGEN``: ``fast`` (the
    default) runs the vectorized two-pass generator of
    :mod:`repro.workloads.fastgen`, which is bit-identical to the
    scalar path; ``scalar`` forces ``Program.run``.  A program outside
    the fast path's envelope falls back to scalar with a
    :mod:`repro.health` degradation event, never an error.
    """
    from repro import health

    if length is None:
        length = profile.default_length
    mode = _tracegen_mode()
    program = _cached_program(profile, seed)
    run_seed = seed * 2 + 1
    trace: BranchTrace | None = None
    if mode == "fast":
        from repro.workloads import fastgen

        if fastgen.supports(program):
            trace = fastgen.fast_run(program, length, seed=run_seed)
            health.engine_used(
                "tracegen", fastgen.engine_name(), expected="fastgen-c"
            )
        else:
            health.emit(
                "tracegen",
                "fastgen",
                "scalar",
                reason=f"{profile.name}: program outside the fast-path envelope",
                severity="degraded",
            )
    if trace is None:
        trace = program.run(length=length, seed=run_seed)
        if mode == "scalar":
            health.engine_used("tracegen", "scalar", expected="scalar")
    trace.metadata.update(
        {
            "paper_static": profile.paper_static,
            "paper_dynamic": profile.paper_dynamic,
        }
    )
    return trace
