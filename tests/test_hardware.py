"""Unit tests for the hardware cost model."""

import pytest

from repro.core.hardware import (
    PAPER_SIZE_POINTS_KB,
    HardwareBudget,
    bits_to_bytes,
    bytes_to_counters,
    counters_to_bytes,
    kb,
)


class TestConversions:
    def test_bits_to_bytes(self):
        assert bits_to_bytes(16) == 2.0

    def test_counters_to_bytes(self):
        # 4 two-bit counters per byte
        assert counters_to_bytes(1024) == 256.0

    def test_counters_to_bytes_other_width(self):
        assert counters_to_bytes(8, counter_bits=3) == 3.0

    def test_bytes_to_counters(self):
        assert bytes_to_counters(256.0) == 1024

    def test_bytes_to_counters_rejects_fractional(self):
        with pytest.raises(ValueError):
            bytes_to_counters(0.3)

    def test_roundtrip(self):
        for n in (4, 1024, 131072):
            assert bytes_to_counters(counters_to_bytes(n)) == n

    def test_kb(self):
        assert kb(2048) == 2.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bits_to_bytes(-1)
        with pytest.raises(ValueError):
            counters_to_bytes(-1)


class TestHardwareBudget:
    def test_quarter_kb_is_1024_counters(self):
        budget = HardwareBudget(0.25)
        assert budget.counters == 1024
        assert budget.index_bits == 10

    def test_paper_size_points(self):
        # the paper's x-axis: 0.25 KB .. 32 KB = index bits 10 .. 17
        bits = [HardwareBudget(kbytes).index_bits for kbytes in PAPER_SIZE_POINTS_KB]
        assert bits == [10, 11, 12, 13, 14, 15, 16, 17]

    def test_non_power_of_two_rejected_for_index_bits(self):
        with pytest.raises(ValueError):
            HardwareBudget(0.75).index_bits

    def test_str(self):
        assert str(HardwareBudget(0.25)) == "0.25KB"
        assert str(HardwareBudget(8.0)) == "8KB"

    def test_nbytes(self):
        assert HardwareBudget(2.0).nbytes == 2048.0
