"""Trace-driven simulation engine.

Thin orchestration over the predictor batch interface: reset, run,
(optionally) warm-up split.  All heavy lifting lives in the predictors'
``simulate`` fast paths; the engine guarantees the contract around them
(fresh state, consistent result packaging).

Detailed (Section-4) simulation additionally dispatches through the
batch attribution kernels: gshare and bi-mode through their dedicated
fused kernels (:mod:`repro.sim.batch` / :mod:`repro.sim.batch_bimode`),
every other registered scheme through its ``detailed`` lane kernel in
the registry (:mod:`repro.sim.kernels`).  ``REPRO_DETAILED_KERNEL``
pins the choice to ``batch`` or ``scalar`` (default ``auto``);
``REPRO_KERNEL`` picks the engine *within* the batch tier.  Under
``auto`` every fallback is reported through :mod:`repro.health`; under
the explicit ``batch`` pin a scheme without a usable batch kernel
raises ``RuntimeError`` instead of silently running the scalar loop.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.core.interfaces import BranchPredictor, DetailedSimulation, SimulationResult
from repro.traces.record import BranchTrace

__all__ = ["run", "run_detailed", "run_steps"]


def run(
    predictor: BranchPredictor,
    trace: BranchTrace,
    reset: bool = True,
    warmup: int = 0,
) -> SimulationResult:
    """Simulate ``predictor`` over ``trace``.

    Parameters
    ----------
    reset:
        Restore power-on state first (default).  Pass ``False`` to
        continue from existing state (e.g. across trace chunks).
    warmup:
        If non-zero, the first ``warmup`` branches still train the
        predictor but are excluded from the returned result (the paper
        reports whole-trace rates, so the default is 0).
    """
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    if warmup > len(trace):
        raise ValueError(f"warmup ({warmup}) exceeds trace length ({len(trace)})")
    if reset:
        predictor.reset()
    result = predictor.simulate(trace)
    if warmup:
        result = SimulationResult(
            predictor_name=result.predictor_name,
            trace_name=result.trace_name,
            predictions=result.predictions[warmup:],
            outcomes=result.outcomes[warmup:],
        )
    return result


def _detailed_kernel_mode() -> str:
    mode = os.environ.get("REPRO_DETAILED_KERNEL", "auto").strip().lower() or "auto"
    if mode not in ("auto", "batch", "scalar"):
        raise ValueError(
            f"REPRO_DETAILED_KERNEL must be auto/batch/scalar, got {mode!r}"
        )
    return mode


def _fallback(predictor: BranchPredictor, mode: str, reason: str) -> None:
    """Record (or, pinned, refuse) a batch -> scalar detailed fallback.

    Under ``REPRO_DETAILED_KERNEL=auto`` the degradation is a health
    event and the caller runs the scalar loop; under an explicit
    ``batch`` pin a silent fall-through would defeat the pin's point,
    so it raises, naming the scheme.
    """
    from repro import health

    if mode == "batch":
        raise RuntimeError(
            f"REPRO_DETAILED_KERNEL=batch but {predictor.name} has no usable "
            f"batch attribution kernel: {reason}"
        )
    health.engine_used(
        "detailed-kernel",
        "scalar",
        expected="scalar" if mode == "scalar" else "batch",
        reason=reason,
    )


def _run_detailed_batch(
    predictor: BranchPredictor, trace: BranchTrace, mode: str
) -> Optional[DetailedSimulation]:
    """The batch attribution kernel's detailed simulation, or ``None``.

    ``None`` means the caller should fall back to the scalar
    ``simulate_detailed`` path; the fallback is recorded as a health
    event under ``auto`` and raises ``RuntimeError`` under the explicit
    ``batch`` pin.  Dispatch covers every registered scheme: gshare and
    bi-mode keep their dedicated fused attribution kernels, everything
    else resolves through the kernel registry
    (:func:`repro.sim.kernels.spec_for_predictor` -> lane -> the
    scheme's ``detailed`` lane kernel), with the engine within the
    batch tier following ``REPRO_KERNEL``.  The batch path never
    touches the predictor's own tables — callers under ``reset=True``
    semantics observe power-on state either way.
    """
    from repro import health
    from repro.core.bimode import BiModePredictor
    from repro.predictors.gshare import GSharePredictor
    from repro.sim import kernels, lanes
    from repro.sim.batch import gshare_lane_detailed, lane_for_spec
    from repro.sim.batch_bimode import BiModeLane, bimode_lane_detailed

    try:
        if isinstance(predictor, GSharePredictor):
            lane = lane_for_spec(predictor.name)
            if lane is None:  # pragma: no cover - name always parses
                raise ValueError(f"unbatchable gshare spec {predictor.name!r}")
            predictions, counter_ids = gshare_lane_detailed(lane, trace)
            num_counters = lane.table_size
        elif isinstance(predictor, BiModePredictor):
            lane = BiModeLane(
                dir_bits=predictor.direction_index_bits,
                hist_bits=predictor.history_bits,
                choice_bits=predictor.choice_index_bits,
                full_update=predictor.full_update,
                choice_uses_history=predictor.choice_uses_history,
            )
            predictions, counter_ids = bimode_lane_detailed(lane, trace)
            num_counters = 2 * lane.bank_size
        else:
            spec = kernels.spec_for_predictor(predictor)
            kind, lane = ("scalar", None) if spec is None else kernels.kernel_for_spec(spec)
            entry = kernels.PORTED.get(kind)
            if entry is None or entry.detailed is None or lane is None:
                _fallback(
                    predictor, mode, f"no batch attribution kernel for {predictor.name}"
                )
                return None
            engines, _, reason = kernels._resolve_engines(
                entry, [lane], kernels.kernel_mode()
            )
            if engines[0] == "scalar":
                # REPRO_KERNEL=scalar, or a sequential-only scheme with
                # no compiler: the batch tier has nothing to run with.
                _fallback(
                    predictor,
                    mode,
                    reason or "REPRO_KERNEL=scalar pins the scalar engine",
                )
                return None
            predictions, counter_ids = entry.detailed(lane, trace, engines[0], None)
            num_counters = lanes.detailed_num_counters(lane)
    except RuntimeError:
        raise  # pinned-mode refusals (and REPRO_KERNEL=c without a compiler)
    except Exception as exc:  # fall back rather than lose the analysis
        if mode == "batch":
            raise RuntimeError(
                f"REPRO_DETAILED_KERNEL=batch but the batch kernel for "
                f"{predictor.name} failed: {exc}"
            ) from exc
        health.emit(
            "detailed-kernel",
            expected="batch",
            actual="scalar",
            reason=f"batch kernel failed: {exc}",
            severity="degraded",
        )
        return None
    health.engine_used("detailed-kernel", "batch", expected="batch")
    result = SimulationResult(
        predictor_name=predictor.name,
        trace_name=trace.name,
        predictions=predictions,
        outcomes=trace.outcomes,
    )
    return DetailedSimulation(
        result=result,
        counter_ids=counter_ids,
        num_counters=num_counters,
        pcs=trace.pcs,
    )


def run_detailed(
    predictor: BranchPredictor,
    trace: BranchTrace,
    reset: bool = True,
    warmup: int = 0,
) -> DetailedSimulation:
    """Simulate with per-access counter attribution (Section-4 analysis).

    Parameters mirror :func:`run`: ``warmup`` branches still train the
    predictor but are excluded from the returned result (and from the
    attribution arrays).  With ``reset=True`` (the default) the
    simulation dispatches through the batch attribution kernels when
    ``$REPRO_DETAILED_KERNEL`` allows (``auto``/``batch``; ``scalar``
    forces the per-branch loop); results are bit-identical either way.
    """
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    if warmup > len(trace):
        raise ValueError(f"warmup ({warmup}) exceeds trace length ({len(trace)})")
    mode = _detailed_kernel_mode()
    detailed = None
    if mode != "scalar" and reset:
        detailed = _run_detailed_batch(predictor, trace, mode)
    elif mode == "batch" and not reset:
        from repro import health

        # the batch kernels replay from power-on state and cannot honour
        # live predictor tables; the pin is overridden loudly, not silently
        health.engine_used(
            "detailed-kernel",
            "scalar",
            expected="batch",
            reason="reset=False continues live predictor state",
        )
    if detailed is None:
        if reset:
            predictor.reset()
        detailed = predictor.simulate_detailed(trace)
    if warmup:
        result = detailed.result
        sliced = SimulationResult(
            predictor_name=result.predictor_name,
            trace_name=result.trace_name,
            predictions=result.predictions[warmup:],
            outcomes=result.outcomes[warmup:],
        )
        detailed = DetailedSimulation(
            result=sliced,
            counter_ids=detailed.counter_ids[warmup:],
            num_counters=detailed.num_counters,
            pcs=None if detailed.pcs is None else detailed.pcs[warmup:],
        )
    return detailed


def run_steps(
    predictor: BranchPredictor, trace: BranchTrace, reset: bool = True
) -> SimulationResult:
    """Simulate via the scalar step interface (reference semantics).

    Exists so tests can assert batch/step equivalence; production code
    should use :func:`run`.
    """
    if reset:
        predictor.reset()
    return BranchPredictor.simulate(predictor, trace)
