"""Lane kernels for the registry-ported predictor schemes.

The scheme-agnostic kernel registry (:mod:`repro.sim.kernels`) maps
every registered predictor spec onto the fastest bit-identical
execution strategy available.  This module supplies the per-scheme
*kernels* for the first ported wave — everything beyond the original
gshare/bi-mode fast paths of :mod:`repro.sim.batch` /
:mod:`repro.sim.batch_bimode`:

* **counter-major schemes** — bimodal (any counter width), the whole
  two-level family (GAg/GAs/GAp/gselect and PAg/PAs/PAp), agree,
  gskew with the *total* update policy, and the bimodal+gshare
  tournament.  None of these feed predictions back into their own index
  or training streams, so every per-access counter id and training
  delta is precomputable from ``(pcs, outcomes)`` alone and the
  remaining sequential work is exactly one saturating-counter automaton
  per table.  That automaton runs through the shared compiled loop
  (:func:`repro.sim._cstep.counter_lane`) or the counter-major
  segmented scan (:func:`repro.sim.batch.counter_scan`) — the same
  machinery, and the same bit-exactness argument, as the gshare kernel.
* **sequential schemes** — gskew's *enhanced* (e-gskew) policy,
  tri-mode, YAGS, and the perceptron.  Their partial updates feed
  predictor state back into which table trains (or which bank an
  access lands in, or — for the perceptron — whether the threshold
  gate fires), which defeats counter-major decomposition exactly like
  bi-mode's choice feedback; each gets a dedicated compiled per-pair
  loop in :mod:`repro.sim._cstep` over precomputed index streams.
* **second-wave lane schemes** — the bias filter (over a gshare or
  bimodal sub-predictor) and the three static schemes
  (always-taken / always-not-taken / btfnt).  The statics are pure
  vectorized one-shots; the bias filter decomposes (see below) into
  the per-slot grouping machinery plus one counter automaton over the
  *unfiltered* subsequence, so it runs under both the compiled loop
  and the numpy engine.

Scheme-specific notes
---------------------
**Per-address histories (PAx).**  The branch-history table evolves from
outcomes only, so each register's contents are a pure function of the
earlier occurrences of the PCs mapping to it.  The kernel groups
accesses by BHT slot with the stable counting sort and assembles each
access's history word from the previous ``hist_bits`` outcomes *within
its group* — fully vectorized, one pass per history bit.

**Agree.**  The biasing bit of a slot is invalid until the slot's first
dynamic occurrence *updates*, and that first update sets it to the
branch outcome.  At prediction time access ``i`` therefore sees bias
``False`` if no earlier access touched its slot (including at the first
occurrence itself), else the outcome of the slot's first occurrence.
The counters train toward ``bias == outcome`` — at a first occurrence
that is ``True`` by construction, matching ``AgreePredictor.update``
which sets the bias before computing agreement.

**Tournament.**  Both components are feedback-free (bimodal + gshare),
so their prediction streams come from two counter scans; the meta table
then trains with deltas in ``{-1, 0, +1}`` (0 when the components
agree), which the generalized scan and the compiled loop both support.

**Bias filter.**  The filter automaton (direction bit + saturating run
counter per slot) evolves from ``(pcs, outcomes)`` alone — after every
update the direction bit equals the slot's last outcome, and the run
counter equals the length of the slot's current run of identical
outcomes, capped at ``2**run_bits - 1``.  Grouping accesses by filter
slot (the per-address-history machinery) therefore yields each
access's filtered/unfiltered classification and, for filtered
accesses, the prediction (the previous same-slot outcome) with no
sequential work.  The sub-predictor sees exactly the *unfiltered*
subsequence — its global history included, per the scalar design note
— so its prediction stream is one ordinary counter-major scan over the
compressed ``(pcs, outcomes)`` arrays.  Supported sub-predictors:
gshare and bimodal (the configurations the benches sweep); any other
sub falls to the scalar family with an explicit planner veto.

Every kernel is asserted bit-identical to its scalar predictor and the
dict-based oracle by the registry-driven verification suite
(``tests/test_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.counters import WEAKLY_NOT_TAKEN, WEAKLY_TAKEN
from repro.core.grouping import stable_group_order
from repro.core.history import global_history_stream
from repro.core.indexing import concat_index_stream, gshare_index_stream, mask
from repro.core.registry import parse_spec
from repro.sim.batch import counter_scan
from repro.traces.record import BranchTrace

__all__ = [
    "BimodalLane",
    "TwoLevelLane",
    "AgreeLane",
    "GSkewLane",
    "TournamentLane",
    "TriModeLane",
    "YagsLane",
    "PerceptronLane",
    "BiasFilterLane",
    "StaticLane",
    "bimodal_lane_for_spec",
    "twolevel_lane_for_spec",
    "agree_lane_for_spec",
    "gskew_lane_for_spec",
    "tournament_lane_for_spec",
    "trimode_lane_for_spec",
    "yags_lane_for_spec",
    "perceptron_lane_for_spec",
    "biasfilter_lane_for_spec",
    "static_lane_for_spec",
    "bimodal_predictions",
    "twolevel_predictions",
    "agree_predictions",
    "gskew_predictions",
    "tournament_predictions",
    "trimode_predictions",
    "yags_predictions",
    "perceptron_predictions",
    "biasfilter_predictions",
    "static_predictions",
    "static_rates",
    "per_address_histories",
    "bimodal_detailed",
    "twolevel_detailed",
    "agree_detailed",
    "gskew_detailed",
    "tournament_detailed",
    "trimode_detailed",
    "yags_detailed",
    "perceptron_detailed",
    "biasfilter_detailed",
    "static_detailed",
    "detailed_num_counters",
]

#: CounterTable's geometry ceiling; larger specs are rejected by the
#: scalar constructors, so the lane parsers reject them too (the spec
#: then falls to the scalar family and raises the original error).
_MAX_TABLE_BITS = 24


# -- lane descriptions ------------------------------------------------------------


@dataclass(frozen=True)
class BimodalLane:
    """One bimodal configuration (any counter width)."""

    index_bits: int
    counter_bits: int = 2

    @property
    def threshold(self) -> int:
        return 1 << (self.counter_bits - 1)

    @property
    def max_state(self) -> int:
        return (1 << self.counter_bits) - 1


@dataclass(frozen=True)
class TwoLevelLane:
    """One two-level configuration; ``bht_bits is None`` for GAx."""

    scheme: str
    hist_bits: int
    select_bits: int
    bht_bits: Optional[int] = None


@dataclass(frozen=True)
class AgreeLane:
    index_bits: int
    hist_bits: int
    bias_bits: int


@dataclass(frozen=True)
class GSkewLane:
    bank_bits: int
    hist_bits: int
    enhanced: bool = True


@dataclass(frozen=True)
class TournamentLane:
    """The spec-form pairing: bimodal(index) + gshare(index, index)."""

    index_bits: int
    meta_bits: int


@dataclass(frozen=True)
class TriModeLane:
    dir_bits: int
    hist_bits: int
    choice_bits: int


@dataclass(frozen=True)
class YagsLane:
    choice_bits: int
    cache_bits: int
    hist_bits: int
    tag_bits: int


@dataclass(frozen=True)
class PerceptronLane:
    index_bits: int
    hist_bits: int
    weight_bits: int

    @property
    def theta(self) -> int:
        return int(1.93 * self.hist_bits + 14)

    @property
    def w_max(self) -> int:
        return (1 << (self.weight_bits - 1)) - 1

    @property
    def w_min(self) -> int:
        return -(1 << (self.weight_bits - 1))


@dataclass(frozen=True)
class BiasFilterLane:
    """Filter geometry plus the inlined sub-predictor configuration;
    ``sub_hist_bits`` is 0 for a bimodal sub."""

    filter_bits: int
    run_bits: int
    sub_scheme: str  # "gshare" | "bimodal"
    sub_index_bits: int
    sub_hist_bits: int

    @property
    def max_run(self) -> int:
        return (1 << self.run_bits) - 1


@dataclass(frozen=True)
class StaticLane:
    scheme: str  # "always-taken" | "always-not-taken" | "btfnt"


# -- spec parsing -----------------------------------------------------------------


def _parse_int_spec(
    spec: str, scheme: str, allowed: frozenset, required: frozenset
) -> Optional[Dict[str, int]]:
    """Parse an all-integer spec, or ``None`` if it is not a ``scheme``
    configuration with exactly the allowed knobs."""
    try:
        name, kwargs = parse_spec(spec)
    except ValueError:
        return None
    if name != scheme or not set(kwargs) <= allowed or not required <= set(kwargs):
        return None
    out: Dict[str, int] = {}
    for key, value in kwargs.items():
        try:
            out[key] = int(value)
        except ValueError:
            return None
    return out


def bimodal_lane_for_spec(spec: str) -> Optional[BimodalLane]:
    kw = _parse_int_spec(spec, "bimodal", frozenset({"index", "bits"}), frozenset({"index"}))
    if kw is None:
        return None
    index, bits = kw["index"], kw.get("bits", 2)
    if not 0 <= index <= _MAX_TABLE_BITS or not 1 <= bits <= 7:
        return None
    return BimodalLane(index_bits=index, counter_bits=bits)


#: Spec-knob layout of the two-level family: required keys, plus how the
#: select width is spelled (``None`` = fixed 0) and whether a BHT exists.
_TWOLEVEL_FORMS = {
    "gag": (frozenset({"hist"}), None, False),
    "gas": (frozenset({"hist", "select"}), "select", False),
    "gselect": (frozenset({"hist", "addr"}), "addr", False),
    "gap": (frozenset({"hist"}), "addr", False),
    "pag": (frozenset({"hist", "bht"}), None, True),
    "pas": (frozenset({"hist", "select", "bht"}), "select", True),
    "pap": (frozenset({"hist", "addr", "bht"}), "addr", True),
}


def twolevel_lane_for_spec(spec: str) -> Optional[TwoLevelLane]:
    scheme = spec.split(":", 1)[0].strip()
    form = _TWOLEVEL_FORMS.get(scheme)
    if form is None:
        return None
    required, select_key, per_address = form
    allowed = set(required)
    if select_key:
        allowed.add(select_key)
    kw = _parse_int_spec(spec, scheme, frozenset(allowed), required)
    if kw is None:
        return None
    hist = kw["hist"]
    if select_key is None:
        select = 0
    elif scheme == "gap":
        select = kw.get("addr", 8)
    else:
        select = kw[select_key]
    bht = kw["bht"] if per_address else None
    if hist < 0 or select < 0 or hist + select > _MAX_TABLE_BITS:
        return None
    if scheme in ("gas", "gselect", "pas", "pap") and select < 1:
        return None
    if per_address and not 0 <= bht <= _MAX_TABLE_BITS:
        return None
    return TwoLevelLane(scheme=scheme, hist_bits=hist, select_bits=select, bht_bits=bht)


def agree_lane_for_spec(spec: str) -> Optional[AgreeLane]:
    kw = _parse_int_spec(
        spec, "agree", frozenset({"index", "hist", "bias"}), frozenset({"index"})
    )
    if kw is None:
        return None
    index = kw["index"]
    hist = kw.get("hist", index)
    bias = kw.get("bias", index)
    if not 0 <= index <= _MAX_TABLE_BITS or not 0 <= hist <= index:
        return None
    if not 0 <= bias <= _MAX_TABLE_BITS:
        return None
    return AgreeLane(index_bits=index, hist_bits=hist, bias_bits=bias)


def gskew_lane_for_spec(spec: str) -> Optional[GSkewLane]:
    try:
        name, kwargs = parse_spec(spec)
    except ValueError:
        return None
    if name != "gskew" or not set(kwargs) <= {"bank", "hist", "update"}:
        return None
    if "bank" not in kwargs:
        return None
    policy = kwargs.get("update", "enhanced")
    if policy not in ("enhanced", "total"):
        return None
    try:
        bank = int(kwargs["bank"])
        hist = int(kwargs.get("hist", bank))
    except ValueError:
        return None
    if not 0 <= bank <= _MAX_TABLE_BITS or hist < 0:
        return None
    return GSkewLane(bank_bits=bank, hist_bits=hist, enhanced=policy == "enhanced")


def tournament_lane_for_spec(spec: str) -> Optional[TournamentLane]:
    kw = _parse_int_spec(
        spec, "tournament", frozenset({"index", "meta"}), frozenset({"index"})
    )
    if kw is None:
        return None
    index = kw["index"]
    meta = kw.get("meta", index)
    if not 0 <= index <= _MAX_TABLE_BITS or not 0 <= meta <= _MAX_TABLE_BITS:
        return None
    return TournamentLane(index_bits=index, meta_bits=meta)


def trimode_lane_for_spec(spec: str) -> Optional[TriModeLane]:
    kw = _parse_int_spec(
        spec, "trimode", frozenset({"dir", "hist", "choice"}), frozenset({"dir"})
    )
    if kw is None:
        return None
    dir_bits = kw["dir"]
    hist = kw.get("hist", dir_bits)
    choice = kw.get("choice", dir_bits)
    if not 0 <= dir_bits <= _MAX_TABLE_BITS or not 0 <= hist <= dir_bits:
        return None
    if not 0 <= choice <= _MAX_TABLE_BITS:
        return None
    return TriModeLane(dir_bits=dir_bits, hist_bits=hist, choice_bits=choice)


def yags_lane_for_spec(spec: str) -> Optional[YagsLane]:
    kw = _parse_int_spec(
        spec,
        "yags",
        frozenset({"choice", "cache", "hist", "tag"}),
        frozenset({"choice", "cache"}),
    )
    if kw is None:
        return None
    choice, cache = kw["choice"], kw["cache"]
    hist = kw.get("hist", cache)
    tag = kw.get("tag", 6)
    if not 0 <= choice <= _MAX_TABLE_BITS or not 0 <= cache <= _MAX_TABLE_BITS:
        return None
    if not 0 <= hist <= cache or not 1 <= tag <= 30:
        return None
    return YagsLane(choice_bits=choice, cache_bits=cache, hist_bits=hist, tag_bits=tag)


def perceptron_lane_for_spec(spec: str) -> Optional[PerceptronLane]:
    kw = _parse_int_spec(
        spec, "perceptron", frozenset({"index", "hist", "w"}), frozenset({"index"})
    )
    if kw is None:
        return None
    index = kw["index"]
    hist = kw.get("hist", 12)
    w = kw.get("w", 8)
    # hist caps at the GlobalHistoryRegister width; w at int32-safe
    # saturation (the int64 dot product then never overflows).
    if not 0 <= index <= _MAX_TABLE_BITS or not 0 <= hist <= 62 or not 2 <= w <= 30:
        return None
    return PerceptronLane(index_bits=index, hist_bits=hist, weight_bits=w)


#: Sub-predictor schemes the bias-filter kernel executes in-lane; any
#: other ``sub=`` value runs through the scalar family with an explicit
#: planner veto (see :func:`repro.sim.kernels.planner_vetoes`).
BIASFILTER_SUBS = ("gshare", "bimodal")


def biasfilter_lane_for_spec(spec: str) -> Optional[BiasFilterLane]:
    try:
        name, kwargs = parse_spec(spec)
    except ValueError:
        return None
    if name != "biasfilter" or not set(kwargs) <= {
        "table",
        "run",
        "sub",
        "sub_index",
        "sub_hist",
    }:
        return None
    if "sub_index" not in kwargs:
        return None
    sub = kwargs.get("sub", "gshare")
    if sub not in BIASFILTER_SUBS:
        return None
    if sub == "bimodal" and "sub_hist" in kwargs:
        return None
    try:
        table = int(kwargs.get("table", 12))
        run = int(kwargs.get("run", 3))
        sub_index = int(kwargs["sub_index"])
        sub_hist = int(kwargs.get("sub_hist", sub_index)) if sub == "gshare" else 0
    except ValueError:
        return None
    # run counters live in int8 in the compiled loop: run_bits <= 7
    if not 0 <= table <= _MAX_TABLE_BITS or not 1 <= run <= 7:
        return None
    if not 0 <= sub_index <= _MAX_TABLE_BITS or not 0 <= sub_hist <= sub_index:
        return None
    return BiasFilterLane(
        filter_bits=table,
        run_bits=run,
        sub_scheme=sub,
        sub_index_bits=sub_index,
        sub_hist_bits=sub_hist,
    )


_STATIC_SCHEMES = frozenset({"always-taken", "always-not-taken", "btfnt"})


def static_lane_for_spec(spec: str) -> Optional[StaticLane]:
    try:
        name, kwargs = parse_spec(spec)
    except ValueError:
        return None
    if name not in _STATIC_SCHEMES or kwargs:
        return None
    return StaticLane(scheme=name)


# -- shared stream helpers --------------------------------------------------------


def _hist(trace: BranchTrace, bits: int, cache: Optional[Dict[int, np.ndarray]]) -> np.ndarray:
    if cache is None:
        return global_history_stream(trace.outcomes, bits)
    if bits not in cache:
        cache[bits] = global_history_stream(trace.outcomes, bits)
    return cache[bits]


def per_address_histories(
    pcs: np.ndarray, outcomes: np.ndarray, bht_bits: int, hist_bits: int
) -> np.ndarray:
    """Each access's BHT register contents at prediction time.

    Bit ``j`` of access ``i``'s word is the outcome of the
    ``(j+1)``-th most recent *earlier* access mapping to the same BHT
    slot (``pc & mask(bht_bits)``) — exactly the shift-register state
    ``PerAddressHistoryTable.read`` returns, vectorized per history bit
    over the stable per-slot grouping.
    """
    n = len(pcs)
    hist = np.zeros(n, dtype=np.int64)
    if n == 0 or hist_bits == 0:
        return hist
    slots = (pcs & mask(bht_bits)).astype(np.int32)
    order = stable_group_order(slots, 1 << bht_bits)
    grouped_slots = slots[order]
    grouped_out = outcomes[order].astype(np.int64)

    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    np.not_equal(grouped_slots[1:], grouped_slots[:-1], out=seg_start[1:])
    seg_first = np.flatnonzero(seg_start)
    seg_id = np.cumsum(seg_start, dtype=np.int64) - 1
    pos_in_seg = np.arange(n, dtype=np.int64) - seg_first[seg_id]

    grouped_hist = np.zeros(n, dtype=np.int64)
    for j in range(hist_bits):
        has_prior = np.flatnonzero(pos_in_seg >= j + 1)
        grouped_hist[has_prior] |= grouped_out[has_prior - (j + 1)] << j
    hist[order] = grouped_hist
    return hist


def _observed_states(
    keys: np.ndarray,
    deltas: np.ndarray,
    num_counters: int,
    init: int,
    max_state: int,
    engine: str,
) -> np.ndarray:
    """The state each access observes, via the compiled loop or the
    counter-major scan — the shared automaton of every counter-major
    scheme.  ``deltas`` are int-like in ``{-1, 0, +1}``."""
    if engine == "c":
        from repro.sim import _cstep

        table = np.full(num_counters, init, dtype=np.int8)
        return _cstep.counter_lane(
            np.ascontiguousarray(keys, dtype=np.int64),
            np.ascontiguousarray(deltas, dtype=np.int8),
            table,
            max_state,
        )
    if engine != "numpy":
        raise ValueError(f"unsupported counter engine {engine!r}")
    init_states = np.full(num_counters, init, dtype=np.int32)
    pre, _ = counter_scan(keys, deltas, init_states, num_counters, max_state=max_state)
    return pre


def _train_deltas(outcomes: np.ndarray) -> np.ndarray:
    return np.where(outcomes, 1, -1).astype(np.int8)


# -- counter-major kernels --------------------------------------------------------


def bimodal_detailed(
    lane: BimodalLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(predictions, counter_ids)``: the accessed slot IS the id."""
    keys = (trace.pcs & mask(lane.index_bits)).astype(np.int64)
    pre = _observed_states(
        keys,
        _train_deltas(trace.outcomes),
        1 << lane.index_bits,
        lane.threshold,  # power-on init is weakly taken at any width
        lane.max_state,
        engine,
    )
    return pre >= lane.threshold, keys


def bimodal_predictions(
    lane: BimodalLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    return bimodal_detailed(lane, trace, engine, hist_cache)[0]


def twolevel_detailed(
    lane: TwoLevelLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(predictions, counter_ids)``: the accessed PHT slot IS the id."""
    if lane.bht_bits is None:
        histories = _hist(trace, lane.hist_bits, hist_cache)
    else:
        histories = per_address_histories(
            trace.pcs, trace.outcomes, lane.bht_bits, lane.hist_bits
        )
    keys = concat_index_stream(
        histories, lane.hist_bits, trace.pcs, lane.select_bits
    ).astype(np.int64)
    pre = _observed_states(
        keys,
        _train_deltas(trace.outcomes),
        1 << (lane.hist_bits + lane.select_bits),
        WEAKLY_TAKEN,
        3,
        engine,
    )
    return pre >= 2, keys


def twolevel_predictions(
    lane: TwoLevelLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    return twolevel_detailed(lane, trace, engine, hist_cache)[0]


def agree_detailed(
    lane: AgreeLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(predictions, counter_ids)``: the accessed agree-PHT slot IS
    the id (the biasing bits are not counters)."""
    n = len(trace)
    outcomes = trace.outcomes
    histories = _hist(trace, lane.hist_bits, hist_cache)
    keys = gshare_index_stream(
        trace.pcs, histories, lane.index_bits, lane.hist_bits
    ).astype(np.int64)

    # First dynamic occurrence of each biasing slot; every later access
    # sees that occurrence's outcome as its bias, earlier (and the first
    # occurrence itself) the power-on False of an invalid slot.
    slots = (trace.pcs & mask(lane.bias_bits)).astype(np.int64)
    first = np.full(1 << lane.bias_bits, n, dtype=np.int64)
    np.minimum.at(first, slots, np.arange(n, dtype=np.int64))
    first_of_slot = first[slots]  # <= own position for every access
    bias_after_update = outcomes[first_of_slot]
    bias_at_predict = np.where(
        first_of_slot < np.arange(n, dtype=np.int64), bias_after_update, False
    )

    agreed = bias_after_update == outcomes  # True at first occurrences
    pre = _observed_states(
        keys, _train_deltas(agreed), 1 << lane.index_bits, WEAKLY_TAKEN, 3, engine
    )
    return (pre >= 2) == bias_at_predict, keys


def agree_predictions(
    lane: AgreeLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    return agree_detailed(lane, trace, engine, hist_cache)[0]


def _rotate_stream(values: np.ndarray, amount: int, bits: int) -> np.ndarray:
    """Vectorized ``gskew._rotate``: left-rotate within a bits-wide word."""
    if bits == 0:
        return np.zeros_like(values)
    amount %= bits
    m = mask(bits)
    values = values & m
    return ((values << amount) | (values >> (bits - amount))) & m


def _gskew_index_streams(
    lane: GSkewLane, trace: BranchTrace, hist_cache: Optional[Dict[int, np.ndarray]]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    bits = lane.bank_bits
    pcs = trace.pcs.astype(np.int64, copy=False)
    if bits == 0:
        zero = np.zeros(len(trace), dtype=np.int64)
        return zero, zero, zero
    m = mask(bits)
    pc_lo = pcs & m
    pc_hi = (pcs >> bits) & m
    hist = _hist(trace, lane.hist_bits, hist_cache) & m
    i0 = pc_lo ^ hist
    i1 = _rotate_stream(pc_lo, 1, bits) ^ _rotate_stream(hist, bits // 2, bits) ^ pc_hi
    i2 = (
        _rotate_stream(pc_lo, 2, bits)
        ^ _rotate_stream(hist, (2 * bits) // 3, bits)
        ^ _rotate_stream(pc_hi, 1, bits)
    )
    return i0, i1, i2


def gskew_detailed(
    lane: GSkewLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(predictions, counter_ids)``: the prediction is attributed to
    the first (lowest-numbered) bank voting with the majority, bank ``k``
    offset by ``k * bank_size``."""
    if engine == "c":
        from repro.sim import _cstep

        banks = np.full((3, 1 << lane.bank_bits), WEAKLY_TAKEN, dtype=np.int8)
        cids = np.empty(len(trace), dtype=np.int64)
        preds = _cstep.gskew_lane(
            np.ascontiguousarray(trace.pcs, dtype=np.int64),
            np.ascontiguousarray(trace.outcomes).view(np.uint8),
            lane.bank_bits,
            lane.hist_bits,
            lane.enhanced,
            banks,
            cids,
        )
        return preds.view(bool), cids
    if engine != "numpy" or lane.enhanced:
        # e-gskew's partial update feeds bank state back into which
        # banks train; no counter-major form exists.
        raise ValueError(f"unsupported gskew engine {engine!r} for {lane}")
    deltas = _train_deltas(trace.outcomes)
    size = 1 << lane.bank_bits
    streams = _gskew_index_streams(lane, trace, hist_cache)
    votes = [
        _observed_states(keys, deltas, size, WEAKLY_TAKEN, 3, "numpy") >= 2
        for keys in streams
    ]
    majority = (
        votes[0].astype(np.int8) + votes[1].astype(np.int8) + votes[2].astype(np.int8)
    ) >= 2
    cids = np.where(
        votes[0] == majority,
        streams[0],
        np.where(votes[1] == majority, size + streams[1], 2 * size + streams[2]),
    )
    return majority, cids


def gskew_predictions(
    lane: GSkewLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    if engine == "c":
        from repro.sim import _cstep

        banks = np.full((3, 1 << lane.bank_bits), WEAKLY_TAKEN, dtype=np.int8)
        preds = _cstep.gskew_lane(
            np.ascontiguousarray(trace.pcs, dtype=np.int64),
            np.ascontiguousarray(trace.outcomes).view(np.uint8),
            lane.bank_bits,
            lane.hist_bits,
            lane.enhanced,
            banks,
        )
        return preds.view(bool)
    if engine != "numpy" or lane.enhanced:
        # e-gskew's partial update feeds bank state back into which
        # banks train; no counter-major form exists.
        raise ValueError(f"unsupported gskew engine {engine!r} for {lane}")
    deltas = _train_deltas(trace.outcomes)
    size = 1 << lane.bank_bits
    votes = np.zeros(len(trace), dtype=np.int8)
    for keys in _gskew_index_streams(lane, trace, hist_cache):
        pre = _observed_states(keys, deltas, size, WEAKLY_TAKEN, 3, "numpy")
        votes += (pre >= 2).astype(np.int8)
    return votes >= 2


def tournament_detailed(
    lane: TournamentLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(predictions, counter_ids)``: the *selected* component's
    counter, gshare (component b) ids offset by the bimodal's size."""
    outcomes = trace.outcomes
    deltas = _train_deltas(outcomes)
    a_keys = (trace.pcs & mask(lane.index_bits)).astype(np.int64)
    histories = _hist(trace, lane.index_bits, hist_cache)
    b_keys = gshare_index_stream(
        trace.pcs, histories, lane.index_bits, lane.index_bits
    ).astype(np.int64)
    size = 1 << lane.index_bits
    pred_a = _observed_states(a_keys, deltas, size, WEAKLY_TAKEN, 3, engine) >= 2
    pred_b = _observed_states(b_keys, deltas, size, WEAKLY_TAKEN, 3, engine) >= 2

    # Meta trains toward "trust b" only on component disagreement.
    meta_keys = (trace.pcs & mask(lane.meta_bits)).astype(np.int64)
    meta_deltas = np.where(
        pred_a == pred_b, 0, np.where(pred_b == outcomes, 1, -1)
    ).astype(np.int8)
    pre_meta = _observed_states(
        meta_keys, meta_deltas, 1 << lane.meta_bits, WEAKLY_TAKEN, 3, engine
    )
    select_b = pre_meta >= 2
    return (
        np.where(select_b, pred_b, pred_a),
        np.where(select_b, size + b_keys, a_keys),
    )


def tournament_predictions(
    lane: TournamentLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    return tournament_detailed(lane, trace, engine, hist_cache)[0]


# -- sequential (compiled-loop) kernels -------------------------------------------


def _trimode_run(
    lane: TriModeLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]],
    cids: Optional[np.ndarray],
) -> np.ndarray:
    if engine != "c":
        raise ValueError(f"unsupported tri-mode engine {engine!r}")
    from repro.sim import _cstep

    histories = _hist(trace, lane.hist_bits, hist_cache)
    di = gshare_index_stream(
        trace.pcs, histories, lane.dir_bits, lane.hist_bits
    ).astype(np.int64)
    ci = (trace.pcs & mask(lane.choice_bits)).astype(np.int64)
    size = 1 << lane.dir_bits
    nt_bank = np.full(size, WEAKLY_NOT_TAKEN, dtype=np.int8)
    tk_bank = np.full(size, WEAKLY_TAKEN, dtype=np.int8)
    wk_bank = np.full(size, WEAKLY_TAKEN, dtype=np.int8)
    choice = np.full(1 << lane.choice_bits, WEAKLY_TAKEN, dtype=np.int8)
    preds = _cstep.trimode_lane(
        np.ascontiguousarray(ci),
        np.ascontiguousarray(di),
        np.ascontiguousarray(trace.outcomes).view(np.uint8),
        nt_bank,
        tk_bank,
        wk_bank,
        choice,
        cids,
    )
    return preds.view(bool)


def trimode_detailed(
    lane: TriModeLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(predictions, counter_ids)``: the selected direction counter,
    bank ``b`` (not-taken, taken, weak) offset by ``b * bank_size``."""
    cids = np.empty(len(trace), dtype=np.int64)
    return _trimode_run(lane, trace, engine, hist_cache, cids), cids


def trimode_predictions(
    lane: TriModeLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    return _trimode_run(lane, trace, engine, hist_cache, None)


def _yags_run(
    lane: YagsLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]],
    cids: Optional[np.ndarray],
) -> np.ndarray:
    if engine != "c":
        raise ValueError(f"unsupported YAGS engine {engine!r}")
    from repro.sim import _cstep

    histories = _hist(trace, lane.hist_bits, hist_cache)
    ki = gshare_index_stream(
        trace.pcs, histories, lane.cache_bits, lane.hist_bits
    ).astype(np.int64)
    ci = (trace.pcs & mask(lane.choice_bits)).astype(np.int64)
    tags = ((trace.pcs >> lane.cache_bits) & mask(lane.tag_bits)).astype(np.int32)
    cache_size = 1 << lane.cache_bits
    choice = np.full(1 << lane.choice_bits, WEAKLY_TAKEN, dtype=np.int8)
    tk_tags = np.full(cache_size, -1, dtype=np.int32)
    tk_ctr = np.full(cache_size, WEAKLY_TAKEN, dtype=np.int8)
    nt_tags = np.full(cache_size, -1, dtype=np.int32)
    nt_ctr = np.full(cache_size, WEAKLY_NOT_TAKEN, dtype=np.int8)
    preds = _cstep.yags_lane(
        np.ascontiguousarray(ci),
        np.ascontiguousarray(ki),
        np.ascontiguousarray(tags),
        np.ascontiguousarray(trace.outcomes).view(np.uint8),
        choice,
        tk_tags,
        tk_ctr,
        nt_tags,
        nt_ctr,
        cids,
    )
    return preds.view(bool)


def yags_detailed(
    lane: YagsLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(predictions, counter_ids)``: choice table, then taken cache,
    then not-taken cache; a hit charges the hitting cache entry, a miss
    the choice counter that supplied the bias."""
    cids = np.empty(len(trace), dtype=np.int64)
    return _yags_run(lane, trace, engine, hist_cache, cids), cids


def yags_predictions(
    lane: YagsLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    return _yags_run(lane, trace, engine, hist_cache, None)


def perceptron_predictions(
    lane: PerceptronLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    if engine != "c":
        # The threshold gate reads the dot product of the weights the
        # *predictor* accumulated: training feeds back into training, so
        # no counter-major form exists.
        raise ValueError(f"unsupported perceptron engine {engine!r}")
    from repro.sim import _cstep

    weights = np.zeros((1 << lane.index_bits) * (lane.hist_bits + 1), dtype=np.int32)
    preds = _cstep.perceptron_lane(
        np.ascontiguousarray(trace.pcs, dtype=np.int64),
        np.ascontiguousarray(trace.outcomes).view(np.uint8),
        lane.index_bits,
        lane.hist_bits,
        lane.theta,
        lane.w_min,
        lane.w_max,
        weights,
    )
    return preds.view(bool)


def perceptron_detailed(
    lane: PerceptronLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(predictions, counter_ids)``: the accessed weight row is
    selected by address alone, so the ids are a pure vectorized hash;
    the predictions still need the sequential loop."""
    preds = perceptron_predictions(lane, trace, engine, hist_cache)
    return preds, (trace.pcs & mask(lane.index_bits)).astype(np.int64)


def _biasfilter_classify(
    lane: BiasFilterLane, pcs: np.ndarray, outcomes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized filter automaton: ``(filtered, filtered_pred)`` per
    access, both in trace order (``filtered_pred`` valid where
    ``filtered``).

    Within each filter slot's stable grouping, the run counter an
    access observes is ``min(max_run, streak)`` where ``streak`` is the
    length of the run of identical outcomes ending at the previous
    same-slot access, and the direction bit it observes is that
    previous access's outcome.
    """
    n = len(pcs)
    slots = (pcs & mask(lane.filter_bits)).astype(np.int32)
    order = stable_group_order(slots, 1 << lane.filter_bits)
    g_slot = slots[order]
    g_out = outcomes[order]

    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    np.not_equal(g_slot[1:], g_slot[:-1], out=seg_start[1:])
    # a run restarts at a segment start or an outcome flip
    boundary = seg_start.copy()
    boundary[1:] |= g_out[1:] != g_out[:-1]
    idx = np.arange(n, dtype=np.int64)
    last_boundary = np.maximum.accumulate(np.where(boundary, idx, -1))
    streak = idx - last_boundary + 1

    prev_streak = np.empty(n, dtype=np.int64)
    prev_streak[0] = 0
    prev_streak[1:] = streak[:-1]
    g_filtered = ~seg_start & (prev_streak >= lane.max_run)
    g_pred = np.empty(n, dtype=bool)
    g_pred[0] = False
    g_pred[1:] = g_out[:-1]  # valid wherever g_filtered (never at seg start)

    filtered = np.empty(n, dtype=bool)
    filtered[order] = g_filtered
    filtered_pred = np.empty(n, dtype=bool)
    filtered_pred[order] = g_pred
    return filtered, filtered_pred


def biasfilter_predictions(
    lane: BiasFilterLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    if engine == "c":
        from repro.sim import _cstep

        size = 1 << lane.filter_bits
        dirs = np.zeros(size, dtype=np.uint8)
        runs = np.zeros(size, dtype=np.int8)
        sub_table = np.full(1 << lane.sub_index_bits, WEAKLY_TAKEN, dtype=np.int8)
        preds = _cstep.biasfilter_lane(
            np.ascontiguousarray(trace.pcs, dtype=np.int64),
            np.ascontiguousarray(trace.outcomes).view(np.uint8),
            lane.filter_bits,
            lane.max_run,
            lane.sub_index_bits,
            lane.sub_hist_bits,
            dirs,
            runs,
            sub_table,
        )
        return preds.view(bool)
    if engine != "numpy":
        raise ValueError(f"unsupported bias-filter engine {engine!r}")
    n = len(trace)
    preds = np.empty(n, dtype=bool)
    if n == 0:
        return preds
    pcs = trace.pcs
    outcomes = trace.outcomes
    filtered, filtered_pred = _biasfilter_classify(lane, pcs, outcomes)
    preds[filtered] = filtered_pred[filtered]

    # The sub-predictor sees exactly the unfiltered subsequence — its
    # history register included, so the compressed arrays feed the
    # ordinary gshare/bimodal counter-major pipeline.  The full-trace
    # hist_cache does not apply to the compressed stream.
    unfiltered = np.flatnonzero(~filtered)
    sub_pcs = pcs[unfiltered]
    sub_out = outcomes[unfiltered]
    histories = global_history_stream(sub_out, lane.sub_hist_bits)
    keys = gshare_index_stream(
        sub_pcs, histories, lane.sub_index_bits, lane.sub_hist_bits
    ).astype(np.int64)
    pre = _observed_states(
        keys, _train_deltas(sub_out), 1 << lane.sub_index_bits, WEAKLY_TAKEN, 3, engine
    )
    preds[unfiltered] = pre >= 2
    return preds


def biasfilter_detailed(
    lane: BiasFilterLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(predictions, counter_ids)``: filter slots first, then the
    sub-predictor's counters offset by the filter size.  The
    filtered/unfiltered classification and both id streams are
    feedback-free (the filter automaton evolves from ``(pcs, outcomes)``
    alone), so only the sub-predictor's counter automaton touches the
    engine — the detailed tier runs under both the compiled loop and
    the numpy scan.
    """
    n = len(trace)
    preds = np.empty(n, dtype=bool)
    cids = np.empty(n, dtype=np.int64)
    if n == 0:
        return preds, cids
    pcs = trace.pcs
    outcomes = trace.outcomes
    filtered, filtered_pred = _biasfilter_classify(lane, pcs, outcomes)
    preds[filtered] = filtered_pred[filtered]
    cids[filtered] = (pcs[filtered] & mask(lane.filter_bits)).astype(np.int64)

    # unfiltered subsequence: ordinary gshare/bimodal counter automaton
    # over the compressed arrays (the sub's history skips filtered
    # branches), ids offset past the filter slots
    unfiltered = np.flatnonzero(~filtered)
    sub_pcs = pcs[unfiltered]
    sub_out = outcomes[unfiltered]
    histories = global_history_stream(sub_out, lane.sub_hist_bits)
    keys = gshare_index_stream(
        sub_pcs, histories, lane.sub_index_bits, lane.sub_hist_bits
    ).astype(np.int64)
    pre = _observed_states(
        keys, _train_deltas(sub_out), 1 << lane.sub_index_bits, WEAKLY_TAKEN, 3, engine
    )
    preds[unfiltered] = pre >= 2
    cids[unfiltered] = (1 << lane.filter_bits) + keys
    return preds, cids


def static_predictions(
    lane: StaticLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> np.ndarray:
    """The static schemes keep no state, so the same vectorized
    one-shot serves every engine (the ``c``/``numpy`` distinction is
    meaningless without an automaton)."""
    if lane.scheme == "btfnt":
        return (trace.pcs & 1).astype(bool)
    return np.full(len(trace), lane.scheme == "always-taken", dtype=bool)


def static_detailed(
    lane: StaticLane,
    trace: BranchTrace,
    engine: str,
    hist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(predictions, counter_ids)``: btfnt attributes to its two
    virtual rules (0 = forward, 1 = backward); the fixed schemes have a
    single virtual counter."""
    preds = static_predictions(lane, trace, engine, hist_cache)
    if lane.scheme == "btfnt":
        return preds, preds.astype(np.int64)
    return preds, np.zeros(len(trace), dtype=np.int64)


def detailed_num_counters(lane) -> int:
    """Section-4 counter count of a lane — the ``num_counters`` of the
    :class:`~repro.core.interfaces.DetailedSimulation` the scalar
    predictor would build for the same configuration."""
    if isinstance(lane, BimodalLane):
        return 1 << lane.index_bits
    if isinstance(lane, TwoLevelLane):
        return 1 << (lane.hist_bits + lane.select_bits)
    if isinstance(lane, AgreeLane):
        return 1 << lane.index_bits
    if isinstance(lane, GSkewLane):
        return 3 << lane.bank_bits
    if isinstance(lane, TournamentLane):
        return 2 << lane.index_bits
    if isinstance(lane, TriModeLane):
        return 3 << lane.dir_bits
    if isinstance(lane, YagsLane):
        return (1 << lane.choice_bits) + (2 << lane.cache_bits)
    if isinstance(lane, PerceptronLane):
        return 1 << lane.index_bits
    if isinstance(lane, BiasFilterLane):
        return (1 << lane.filter_bits) + (1 << lane.sub_index_bits)
    if isinstance(lane, StaticLane):
        return 2 if lane.scheme == "btfnt" else 1
    raise TypeError(f"unknown lane type {type(lane).__name__}")


def static_rates(lane: StaticLane, trace: BranchTrace) -> float:
    """Misprediction rate without materializing predictions: one numpy
    reduction, bit-identical to ``count_nonzero(preds != outcomes) / n``
    (the counts are exact integers, so the division matches)."""
    n = len(trace)
    taken = int(np.count_nonzero(trace.outcomes))
    if lane.scheme == "always-taken":
        return (n - taken) / n
    if lane.scheme == "always-not-taken":
        return taken / n
    return int(np.count_nonzero((trace.pcs & 1).astype(bool) != trace.outcomes)) / n
