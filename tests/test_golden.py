"""Golden regression fixtures: canonical traces, frozen rates.

``tests/golden/rates.json`` pins the exact misprediction rate of a
representative spec per predictor scheme on small canonical traces
(rebuilt deterministically from their recorded recipes).  Rates are
exact rational numbers (miss count / length) computed by deterministic
code, so comparison is **equality**, not approximation: any drift —
however small — is a semantic change to a predictor and must be either
fixed or consciously re-frozen.

``tests/golden/detailed.json`` does the same for the Section-4
pipeline: the *entire* substream-breakdown summary (per-class
breakdown, bias areas, aliasing/sharing structure, class-change
counts) of one representative spec per newly ported scheme, frozen
JSON-exactly on two canonical traces.  A batch attribution kernel that
predicts correctly but charges the wrong counter drifts here even
though every rate in ``rates.json`` stays put.

On mismatch the failure message lists every drifted cell as
``spec | trace: expected ... got ...`` so the blast radius is readable
at a glance.

Regenerate (after an *intentional* semantic change) with::

    PYTHONPATH=src:. python tests/test_golden.py --regen

and eyeball the JSON diff before committing it.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path

from repro.core.registry import make_predictor, parse_spec
from repro.sim.engine import run, run_detailed

from tests.conftest import PORTED_GRID, make_toy_trace

GOLDEN_PATH = Path(__file__).parent / "golden" / "rates.json"
DETAILED_GOLDEN_PATH = Path(__file__).parent / "golden" / "detailed.json"

#: At least one spec per registered scheme under regression pinning,
#: plus the kernel registry's ported grid (2-3 sizes per ported
#: scheme), so every lane kernel answers to a frozen exact rational.
GOLDEN_SPECS = list(
    dict.fromkeys(
        [
            "bimode:dir=7,hist=5,choice=6",
            "bimode:dir=6,hist=6,choice=5,full_update=1,choice_hist=1",
            "gshare:index=8,hist=6",
            "gshare:index=6,hist=3",
            "bimodal:index=7",
            "gag:hist=7",
            "pag:hist=5,bht=5",
            "gselect:hist=4,addr=4",
            "perceptron:index=5,hist=8",
            "agree:index=8,hist=6,bias=8",
            "gskew:bank=6,hist=6",
            "yags:choice=7,cache=5,hist=5,tag=5",
            "tournament:index=7,meta=7",
            "trimode:dir=6,hist=4,choice=5",
            "biasfilter:table=6,run=2,sub_index=7,sub_hist=5",
            "always-taken",
            "always-not-taken",
            "btfnt",
            *PORTED_GRID,
        ]
    )
)

#: One representative spec per newly ported scheme whose full
#: Section-4 summary (exact per-class substream breakdown) is frozen
#: in ``detailed.json``.  The fused gshare/bi-mode attribution kernels
#: predate this wave and answer to their own detailed suites.
DETAILED_SPECS = [
    "bimodal:index=7",
    "pag:hist=5,bht=5",
    "agree:index=8,hist=6,bias=8",
    "gskew:bank=6,hist=6",
    "tournament:index=7,meta=7",
    "trimode:dir=6,hist=4,choice=5",
    "yags:choice=7,cache=5,hist=5,tag=5",
    "perceptron:index=5,hist=8",
    "biasfilter:table=6,run=2,sub_index=7,sub_hist=5",
    "btfnt",
]

#: Canonical trace recipes — regenerated bit-identically by
#: :func:`tests.conftest.make_toy_trace` from these parameters.
GOLDEN_TRACES = {
    "toy-mixed": {"length": 2000, "seed": 7, "num_branches": 24},
    "toy-aliasing": {"length": 1500, "seed": 13, "num_branches": 96},
    "toy-small": {"length": 600, "seed": 3, "num_branches": 8},
}

#: The detailed fixtures freeze two trace shapes (mixed and aliasing
#: pressure); ``toy-small`` adds nothing to the attribution story.
DETAILED_TRACE_NAMES = ("toy-mixed", "toy-aliasing")


def _build_traces():
    return {name: make_toy_trace(**recipe) for name, recipe in GOLDEN_TRACES.items()}


def _compute_rates() -> dict:
    traces = _build_traces()
    return {
        spec: {
            name: str(
                Fraction(
                    run(make_predictor(spec), trace).num_mispredictions, len(trace)
                )
            )
            for name, trace in traces.items()
        }
        for spec in GOLDEN_SPECS
    }


def _compute_detailed() -> dict:
    """Full Section-4 summaries, JSON-normalised for exact comparison."""
    from repro.analysis.summary import summarize_detailed

    traces = _build_traces()
    return {
        spec: {
            name: json.loads(
                json.dumps(
                    summarize_detailed(
                        run_detailed(make_predictor(spec), traces[name])
                    ),
                    sort_keys=True,
                )
            )
            for name in DETAILED_TRACE_NAMES
        }
        for spec in DETAILED_SPECS
    }


def test_golden_covers_every_registered_scheme():
    from repro.core.registry import available_schemes

    covered = {parse_spec(spec)[0] for spec in GOLDEN_SPECS}
    assert covered == set(available_schemes())


def test_fixture_recipes_match_checked_in_file():
    data = json.loads(GOLDEN_PATH.read_text())
    assert data["traces"] == GOLDEN_TRACES, (
        "golden trace recipes changed; regenerate with "
        "`PYTHONPATH=src:. python tests/test_golden.py --regen`"
    )
    assert sorted(data["rates"]) == sorted(GOLDEN_SPECS), (
        "golden spec list changed; regenerate the fixtures"
    )


def test_rates_match_golden_fixtures():
    expected = json.loads(GOLDEN_PATH.read_text())["rates"]
    got = _compute_rates()
    drifted = []
    for spec in GOLDEN_SPECS:
        for name in GOLDEN_TRACES:
            want = expected.get(spec, {}).get(name)
            have = got[spec][name]
            if want != have:
                drifted.append(f"  {spec} | {name}: expected {want}  got {have}")
    assert not drifted, (
        "misprediction rates drifted from tests/golden/rates.json "
        "(intentional? regenerate with "
        "`PYTHONPATH=src:. python tests/test_golden.py --regen`):\n"
        + "\n".join(drifted)
    )


def test_batch_kernels_reproduce_golden_fixtures():
    """The registry's batched path must land on the *same rationals*
    as the scalar engine that froze them: for every golden cell, the
    planner-dispatched rate equals the fixture's exact miss/length."""
    from repro.sim.fused import family_rates, plan_families

    expected = json.loads(GOLDEN_PATH.read_text())["rates"]
    drifted = []
    for name, trace in _build_traces().items():
        got = {}
        for family in plan_families(GOLDEN_SPECS):
            got.update(family_rates(family, trace))
        for spec in GOLDEN_SPECS:
            frac = Fraction(expected[spec][name])
            miss = frac * len(trace)
            assert miss.denominator == 1, (spec, name)
            if got[spec] != int(miss) / len(trace):
                drifted.append(
                    f"  {spec} | {name}: expected {frac}  got {got[spec]}"
                )
    assert not drifted, (
        "batched kernel rates diverge from the golden fixtures:\n"
        + "\n".join(drifted)
    )


def test_detailed_fixtures_cover_six_newly_ported_schemes():
    """ISSUE acceptance: >= 6 newly ported schemes carry frozen
    substream-breakdown summaries on two traces."""
    schemes = {parse_spec(spec)[0] for spec in DETAILED_SPECS}
    assert len(schemes - {"gshare", "bimode"}) >= 6
    assert len(DETAILED_TRACE_NAMES) == 2


def test_detailed_fixture_recipes_match_checked_in_file():
    data = json.loads(DETAILED_GOLDEN_PATH.read_text())
    assert data["traces"] == {
        name: GOLDEN_TRACES[name] for name in DETAILED_TRACE_NAMES
    }, (
        "detailed golden trace recipes changed; regenerate with "
        "`PYTHONPATH=src:. python tests/test_golden.py --regen`"
    )
    assert sorted(data["summaries"]) == sorted(DETAILED_SPECS), (
        "detailed golden spec list changed; regenerate the fixtures"
    )


def test_detailed_summaries_match_golden_fixtures():
    """The frozen cells are *whole summaries* — per-class breakdown,
    bias areas, aliasing/sharing, class-change counts — compared
    JSON-exactly, so a single misattributed access drifts here."""
    expected = json.loads(DETAILED_GOLDEN_PATH.read_text())["summaries"]
    got = _compute_detailed()
    drifted = []
    for spec in DETAILED_SPECS:
        for name in DETAILED_TRACE_NAMES:
            want = expected.get(spec, {}).get(name)
            have = got[spec][name]
            if want != have:
                drifted.append(f"  {spec} | {name}: expected {want}  got {have}")
    assert not drifted, (
        "Section-4 summaries drifted from tests/golden/detailed.json "
        "(intentional? regenerate with "
        "`PYTHONPATH=src:. python tests/test_golden.py --regen`):\n"
        + "\n".join(drifted)
    )


def test_family_detailed_reproduces_golden_summaries():
    """The fused family path (what ``detailed_matrix`` workers run)
    must land on the same frozen summaries as the per-predictor
    ``run_detailed`` loop that froze them."""
    from repro.analysis.summary import summarize_detailed
    from repro.core.interfaces import DetailedSimulation, SimulationResult
    from repro.sim.fused import family_detailed, plan_families

    expected = json.loads(DETAILED_GOLDEN_PATH.read_text())["summaries"]
    traces = _build_traces()
    drifted = []
    for name in DETAILED_TRACE_NAMES:
        trace = traces[name]
        for family in plan_families(DETAILED_SPECS):
            for spec, (preds, cids, num) in family_detailed(family, trace).items():
                detailed = DetailedSimulation(
                    result=SimulationResult(
                        predictor_name=spec,
                        trace_name=trace.name,
                        predictions=preds,
                        outcomes=trace.outcomes,
                    ),
                    counter_ids=cids,
                    num_counters=num,
                    pcs=trace.pcs,
                )
                got = json.loads(
                    json.dumps(summarize_detailed(detailed), sort_keys=True)
                )
                if got != expected[spec][name]:
                    drifted.append(f"  {spec} | {name}")
    assert not drifted, (
        "fused family summaries diverge from the golden fixtures:\n"
        + "\n".join(drifted)
    )


def _regen() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traces": GOLDEN_TRACES, "rates": _compute_rates()}
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(GOLDEN_SPECS)} specs x {len(GOLDEN_TRACES)} traces)")
    detailed = {
        "traces": {name: GOLDEN_TRACES[name] for name in DETAILED_TRACE_NAMES},
        "summaries": _compute_detailed(),
    }
    DETAILED_GOLDEN_PATH.write_text(
        json.dumps(detailed, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"wrote {DETAILED_GOLDEN_PATH} "
        f"({len(DETAILED_SPECS)} specs x {len(DETAILED_TRACE_NAMES)} traces)"
    )


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        sys.exit("usage: PYTHONPATH=src:. python tests/test_golden.py --regen")
