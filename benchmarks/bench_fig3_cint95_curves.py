"""Figure 3 — per-benchmark misprediction curves, SPEC CINT95.

Six panels (compress, gcc, go, xlisp, perl, vortex), same three schemes
as Figure 2.  gshare.best is the per-size configuration that is best
*on the suite average* (paper Section 3.1: "not necessarily the best
for individual benchmarks"), evaluated per benchmark.

Shape checks:

* bi-mode at or below gshare.1PHT on a strong majority of
  (benchmark, size) cells;
* the small-footprint anomaly (Section 3.3): on ``compress`` and
  ``xlisp``, single-PHT gshare is *competitive* at large sizes — within
  a modest factor of bi-mode — unlike on aliasing-dominated gcc;
* go is the hardest benchmark for every scheme.

Bi-mode cells route through the batched kernel
(:mod:`repro.sim.batch_bimode`), gshare cells through
:mod:`repro.sim.batch`; rates are bit-identical to the scalar engine.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    bench_jobs,
    emit_table,
    load_bench_suite,
    result_cache,
    sweep_journal,
)
from repro.analysis.report import ascii_chart
from repro.analysis.sweep import paper_sweep
from repro.core.hardware import PAPER_SIZE_POINTS_KB


def _run():
    traces = load_bench_suite("cint95")
    series = paper_sweep(
        traces,
        kb_points=PAPER_SIZE_POINTS_KB,
        cache=result_cache(),
        jobs=bench_jobs(),
        journal=sweep_journal("fig3_cint95"),
    )
    return traces, series


@pytest.mark.benchmark(group="fig3")
def test_fig3_cint95_curves(benchmark):
    traces, series = benchmark.pedantic(_run, rounds=1, iterations=1)

    for name in traces:
        headers = ["scheme"] + [f"{kb:g}KB" for kb in PAPER_SIZE_POINTS_KB]
        rows = [
            [label] + [f"{100 * p.per_benchmark[name]:.2f}%" for p in sweep.points]
            for label, sweep in series.items()
        ]
        emit_table(f"fig3_{name}", f"Figure 3 — {name}", headers, rows)
        chart = {
            label: [(p.size_kb, p.per_benchmark[name]) for p in sweep.points]
            for label, sweep in series.items()
        }
        print(ascii_chart(chart, title=name, height=12))

    # --- shape assertions -------------------------------------------------
    one_pht = series["gshare.1PHT"]
    bimode = series["bi-mode"]

    cells = wins = 0
    for name in traces:
        for g, b in zip(one_pht.benchmark_rates(name), bimode.benchmark_rates(name)):
            cells += 1
            wins += b < g
    assert wins / cells > 0.7, f"bi-mode won only {wins}/{cells} cells vs 1PHT"

    # go is the hardest benchmark at the largest size, for every scheme
    for sweep in series.values():
        final = {name: sweep.benchmark_rates(name)[-1] for name in traces}
        assert max(final, key=final.get) == "go"

    # small-footprint benchmarks: 1PHT competitive at the large end
    # (within 1.6x of bi-mode), in contrast to gcc where aliasing keeps
    # the gap wide at small sizes
    for name in ("compress", "xlisp"):
        g = one_pht.benchmark_rates(name)[-1]
        b = bimode.benchmark_rates(name)[-1]
        assert g <= 1.6 * b, f"{name}: 1PHT not competitive ({g:.4f} vs {b:.4f})"
    gcc_small_gap = (
        one_pht.benchmark_rates("gcc")[0] / bimode.benchmark_rates("gcc")[0]
    )
    assert gcc_small_gap > 1.1
