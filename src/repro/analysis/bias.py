"""Substream bias analysis (paper Section 4.1–4.2).

The paper's analytical lens: the index function divides the dynamic
branch stream into *substreams* ``s_ij`` — the outcomes of static branch
``i`` that arrive at prediction counter ``j``.  Each substream is
classified by its taken rate:

* **ST** — strongly taken: taken >= 90 % of the time;
* **SNT** — strongly not-taken: taken <= 10 %;
* **WB** — weakly biased: everything else.

Per counter ``c`` the *normalized count* of a substream is its length
divided by the total accesses to ``c`` (Table 3).  The more frequent of
the two strong classes at a counter is its **dominant** class; the other
is **non-dominant**.  A good index function makes the WB area small
(enough history) *and* the non-dominant area small (no destructive
aliasing) — the paper's Figures 5 and 6 visualize exactly these areas,
which :func:`counter_bias_table` computes from a detailed simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.grouping import stable_group_order
from repro.core.interfaces import DetailedSimulation

__all__ = [
    "ST",
    "SNT",
    "WB",
    "CLASS_NAMES",
    "BIAS_THRESHOLD",
    "THRESHOLD_EPS",
    "classify_rate",
    "SubstreamAnalysis",
    "analyze_substreams",
    "pc_code_stream",
    "counter_bias_table",
    "normalized_counts",
]

#: Bias-class codes (array-friendly small ints).
SNT = 0
ST = 1
WB = 2
CLASS_NAMES = {SNT: "SNT", ST: "ST", WB: "WB"}

#: The paper's strong-bias boundary: taken >= 90 % (ST) or <= 10 % (SNT).
BIAS_THRESHOLD = 0.9

#: Tolerance on the strong-bias boundaries, shared by the scalar
#: classifier and the vectorized one in :func:`analyze_substreams` so a
#: rate landing exactly on 0.9 / 0.1 can never classify differently
#: between the two paths.
THRESHOLD_EPS = 1e-12


def classify_rate(taken_rate: float, threshold: float = BIAS_THRESHOLD) -> int:
    """Bias class of a substream with the given taken rate."""
    if not 0.0 <= taken_rate <= 1.0:
        raise ValueError(f"taken_rate must be in [0, 1], got {taken_rate}")
    if taken_rate >= threshold - THRESHOLD_EPS:
        return ST
    if taken_rate <= (1.0 - threshold) + THRESHOLD_EPS:
        return SNT
    return WB


@dataclass
class SubstreamAnalysis:
    """Substream decomposition of one detailed simulation.

    Streams are the distinct ``(static branch, counter)`` pairs observed;
    arrays below are parallel, one entry per stream.

    Attributes
    ----------
    stream_counter:
        Counter id of each stream.
    stream_pc:
        Static branch PC of each stream.
    stream_total / stream_taken / stream_mispredicted:
        Outcome counts of each stream.
    stream_class:
        Bias class (``SNT``/``ST``/``WB``) of each stream.
    access_stream:
        For every dynamic branch, the index of its stream (maps
        per-access data onto stream attributes).
    counter_dominant:
        Per counter id, the dominant strong class (``ST`` or ``SNT``);
        ``-1`` for counters never accessed.  Ties break toward the class
        with more streams, then toward ST.
    num_counters:
        Size of the counter id space.
    """

    stream_counter: np.ndarray
    stream_pc: np.ndarray
    stream_total: np.ndarray
    stream_taken: np.ndarray
    stream_mispredicted: np.ndarray
    stream_class: np.ndarray
    access_stream: np.ndarray
    counter_dominant: np.ndarray
    num_counters: int

    @property
    def num_streams(self) -> int:
        return len(self.stream_counter)

    def stream_role(self) -> np.ndarray:
        """Per stream: 0=dominant, 1=non-dominant, 2=WB (w.r.t. its counter)."""
        role = np.full(self.num_streams, 2, dtype=np.int8)
        strong = self.stream_class != WB
        dominant_of_counter = self.counter_dominant[self.stream_counter]
        role[strong & (self.stream_class == dominant_of_counter)] = 0
        role[strong & (self.stream_class != dominant_of_counter)] = 1
        return role

    def access_class(self) -> np.ndarray:
        """Bias class of every dynamic branch's substream."""
        return self.stream_class[self.access_stream]

    def access_role(self) -> np.ndarray:
        """Dominance role of every dynamic branch's substream."""
        return self.stream_role()[self.access_stream]


def pc_code_stream(pcs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(unique_pcs, dense_codes)`` of a PC stream.

    ``dense_codes[t]`` is the rank of ``pcs[t]`` among the sorted
    distinct PCs — the static-branch half of every substream key.  The
    pair depends only on the trace, so sweeps running many predictor
    configurations over one trace compute it once and pass it to
    :func:`analyze_substreams` for every cell.
    """
    unique_pcs, dense = np.unique(pcs, return_inverse=True)
    return unique_pcs, np.ascontiguousarray(dense, dtype=np.int32)


def analyze_substreams(
    detailed: DetailedSimulation,
    threshold: float = BIAS_THRESHOLD,
    pc_codes: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> SubstreamAnalysis:
    """Decompose a detailed simulation into classified substreams.

    Substream grouping runs in O(n) — a two-pass stable counting sort
    by (PC, counter) replaces the sort-based ``np.unique`` over
    composite keys — and is asserted bit-identical to the reference
    formulation (:mod:`repro.analysis.reference`) by the equivalence
    suite.  ``pc_codes`` (from :func:`pc_code_stream`) skips the
    per-trace PC dictionary pass when the caller sweeps one trace.
    """
    if detailed.pcs is None:
        raise ValueError("detailed simulation lacks per-access PCs")
    if not 0.5 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0.5, 1.0], got {threshold}")
    counter_ids = detailed.counter_ids
    outcomes = detailed.result.outcomes
    mispredicted = detailed.result.mispredicted
    num_counters = detailed.num_counters

    if pc_codes is None:
        pc_codes = pc_code_stream(detailed.pcs)
    unique_pcs, pc_dense = pc_codes
    num_pcs = len(unique_pcs)
    n = len(counter_ids)

    if n == 0:
        return SubstreamAnalysis(
            stream_counter=np.empty(0, dtype=np.int64),
            stream_pc=unique_pcs[:0],
            stream_total=np.empty(0, dtype=np.int64),
            stream_taken=np.empty(0, dtype=np.int64),
            stream_mispredicted=np.empty(0, dtype=np.int64),
            stream_class=np.empty(0, dtype=np.int8),
            access_stream=np.empty(0, dtype=np.int64),
            counter_dominant=np.full(num_counters, -1, dtype=np.int8),
            num_counters=num_counters,
        )

    # Stable radix grouping by (counter, pc): sort by the minor key
    # first, then stably by the major one.  Segment boundaries in the
    # resulting order delimit the substreams in ascending (counter, pc)
    # order — exactly the ordering np.unique over composite keys yields.
    # The compiled driver fuses the grouping and the per-stream
    # reduction into one pass; the numpy formulation below is the
    # bit-identical fallback (REPRO_NO_CC=1 or no compiler).
    cid32 = np.ascontiguousarray(counter_ids, dtype=np.int32)
    from repro.sim import _cstep

    if _cstep.available():
        (
            access_stream,
            stream_counter32,
            stream_pc_idx,
            stream_total,
            stream_taken,
            stream_mispredicted,
        ) = _cstep.substream_group(
            cid32,
            pc_dense,
            np.ascontiguousarray(outcomes, dtype=np.uint8),
            np.ascontiguousarray(mispredicted, dtype=np.uint8),
            num_counters,
            num_pcs,
        )
        stream_counter = stream_counter32.astype(np.int64)
        stream_pc = unique_pcs[stream_pc_idx]
        num_streams = len(stream_counter)
    else:
        by_pc = stable_group_order(pc_dense, num_pcs)
        order = by_pc[stable_group_order(cid32[by_pc], num_counters)]
        sorted_counter = cid32[order]
        sorted_pc = pc_dense[order]

        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(sorted_counter[1:], sorted_counter[:-1], out=first[1:])
        first[1:] |= sorted_pc[1:] != sorted_pc[:-1]
        starts = np.flatnonzero(first)
        num_streams = len(starts)

        access_stream = np.empty(n, dtype=np.int64)
        access_stream[order] = np.cumsum(first) - 1

        stream_counter = sorted_counter[starts].astype(np.int64)
        stream_pc = unique_pcs[sorted_pc[starts]]
        stream_total = np.empty(num_streams, dtype=np.int64)
        stream_total[:-1] = np.diff(starts)
        stream_total[-1] = n - starts[-1]
        stream_taken = np.add.reduceat(outcomes[order], starts, dtype=np.int64)
        stream_mispredicted = np.add.reduceat(
            mispredicted[order], starts, dtype=np.int64
        )

    rates = stream_taken / stream_total
    stream_class = np.full(num_streams, WB, dtype=np.int8)
    stream_class[rates >= threshold - THRESHOLD_EPS] = ST
    stream_class[rates <= (1.0 - threshold) + THRESHOLD_EPS] = SNT

    # dominant strong class per counter, by summed dynamic counts
    st_weight = np.bincount(
        stream_counter,
        weights=np.where(stream_class == ST, stream_total, 0).astype(np.float64),
        minlength=num_counters,
    )
    snt_weight = np.bincount(
        stream_counter,
        weights=np.where(stream_class == SNT, stream_total, 0).astype(np.float64),
        minlength=num_counters,
    )
    accessed = np.bincount(stream_counter, minlength=num_counters) > 0
    counter_dominant = np.full(num_counters, -1, dtype=np.int8)
    counter_dominant[accessed] = np.where(
        st_weight[accessed] >= snt_weight[accessed], ST, SNT
    )

    return SubstreamAnalysis(
        stream_counter=stream_counter,
        stream_pc=stream_pc,
        stream_total=stream_total,
        stream_taken=stream_taken,
        stream_mispredicted=stream_mispredicted,
        stream_class=stream_class,
        access_stream=access_stream,
        counter_dominant=counter_dominant,
        num_counters=num_counters,
    )


def normalized_counts(analysis: SubstreamAnalysis, counter: int) -> dict:
    """Table-3 style normalized counts for one counter.

    Returns ``{pc: (normalized_count, class_name)}`` for every substream
    incident on ``counter``.

    >>> # the paper's Table 3: four branches sharing counter c
    >>> import numpy as np
    >>> from repro.core.interfaces import DetailedSimulation, SimulationResult
    >>> pcs = [0x001]*12 + [0x005]*20 + [0x100]*8 + [0x150]*10
    >>> taken = [True]*11 + [False]*1 + [True]*1 + [False]*19 \\
    ...     + [True]*3 + [False]*5 + [True]*1 + [False]*9
    >>> detailed = DetailedSimulation(
    ...     result=SimulationResult("p", "t", np.zeros(50, bool), np.array(taken)),
    ...     counter_ids=np.zeros(50, int), num_counters=1, pcs=np.array(pcs))
    >>> counts = normalized_counts(analyze_substreams(detailed), 0)
    >>> counts[0x001]
    (0.24, 'ST')
    >>> counts[0x005]
    (0.4, 'SNT')
    >>> counts[0x100]
    (0.16, 'WB')
    >>> counts[0x150]
    (0.2, 'SNT')
    """
    members = analysis.stream_counter == counter
    total = analysis.stream_total[members].sum()
    if total == 0:
        return {}
    return {
        int(pc): (float(n / total), CLASS_NAMES[int(cls)])
        for pc, n, cls in zip(
            analysis.stream_pc[members],
            analysis.stream_total[members],
            analysis.stream_class[members],
        )
    }


def counter_bias_table(analysis: SubstreamAnalysis, sort_by_wb: bool = True) -> np.ndarray:
    """Figure 5/6 data: per accessed counter, the normalized dynamic
    counts of its dominant, non-dominant and WB substream groups.

    Returns an array of shape ``(accessed_counters, 3)`` with columns
    ``[dominant, non_dominant, wb]`` summing to 1 per row, sorted (by
    default) by ascending WB share — the x-axis ordering of the paper's
    figures.
    """
    role = analysis.stream_role()
    num_counters = analysis.num_counters
    weights = analysis.stream_total.astype(np.float64)
    columns = []
    for r in (0, 1, 2):
        columns.append(
            np.bincount(
                analysis.stream_counter,
                weights=np.where(role == r, weights, 0.0),
                minlength=num_counters,
            )
        )
    table = np.stack(columns, axis=1)
    totals = table.sum(axis=1)
    accessed = totals > 0
    table = table[accessed] / totals[accessed, None]
    if sort_by_wb:
        order = np.argsort(table[:, 2], kind="stable")
        table = table[order]
    return table
