"""Fused sweep planner: one trace pass evaluates every cell.

A paper sweep aims a *grid* of predictor specs at each benchmark trace
— Figure 2/3/4 together evaluate a hundred-plus configurations per
trace — and before this module every cell replayed the shared trace
independently: O(specs x trace) work for what is structurally O(trace)
of streaming plus O(specs) of reduction.  The planner closes that gap.

Planner model
-------------
``plan_families`` groups a spec grid into **families** by shared
precomputation:

* **gshare** — every plain ``gshare:index=I,hist=H`` spec.  All lanes
  observe the same global-history contents (only masked widths differ)
  and index with the same ``(pc & imask) ^ (h & hmask)`` form, so one
  64-bit history register and one pass over the raw ``(pc, outcome)``
  stream serves the whole family
  (:func:`repro.sim.batch.gshare_family_rates`).
* **bimode** — every bi-mode spec, including the ``full_update`` /
  ``choice_hist`` ablation variants: the same shared-register argument
  holds for both of its index streams
  (:func:`repro.sim.batch_bimode.bimode_family_rates`).
* **one family per ported scheme** — bimodal, the two-level family,
  agree, gskew, tournament, tri-mode, YAGS, perceptron, the bias
  filter and the static schemes resolve through the kernel registry
  (:mod:`repro.sim.kernels`) onto the lane kernels of
  :mod:`repro.sim.lanes`, sharing precomputed history streams within
  the family.
* **scalar** — specs whose knobs no lane parser accepts (out-of-range
  geometry, unknown options, a bias-filter sub-predictor without a
  kernel lane).  These run per-cell through the scalar engine; falling
  off the batched path is reported as a health degradation so the
  CLI's coalesced summary shows exactly which schemes did not batch,
  and bias-filter sub-predictor vetoes are named explicitly
  (:func:`repro.sim.kernels.planner_vetoes`).

``REPRO_KERNEL=scalar`` pins the *planner* too: every spec routes to
the scalar family with the pin named as the degradation reason.

Families split only on *kind*: two gshare specs never land in separate
families, because nothing about them prevents sharing the pass.  The
family evaluators reduce to per-spec misprediction rates in-loop, so
journals and rate caches keep their per-cell granularity unchanged.

Dispatch
--------
``REPRO_FUSED`` selects the engine per the ``REPRO_*_KERNEL`` pattern:

* ``auto`` (default) — fused when the compiled step driver
  (:mod:`repro.sim._cstep`) is available, otherwise the pre-existing
  per-trace batched kernels, with the fallback health-reported;
* ``on`` — always fused; without a compiler the family evaluators use
  their stacked-numpy fallbacks (health-reported);
* ``off`` — the legacy per-trace batched path, unconditionally.

Every path is bit-identical; the equivalence suite and the
differential oracle assert it cell by cell.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim import kernels
from repro.sim.batch import (
    gshare_family_rates,
    gshare_lane_rates,
)
from repro.sim.batch_bimode import (
    bimode_family_rates,
    bimode_lane_rates,
)
from repro.traces.record import BranchTrace

__all__ = [
    "SpecFamily",
    "plan_families",
    "fused_mode",
    "fused_active",
    "family_rates",
    "family_detailed",
]


@dataclass(frozen=True)
class SpecFamily:
    """One group of specs sharing a fused evaluation pass."""

    kind: str  # any member of kernels.family_order()
    specs: Tuple[str, ...]
    lanes: Tuple[object, ...]  # parallel to specs; None for scalar

    def __post_init__(self) -> None:
        if self.kind not in kernels.family_order():
            raise ValueError(f"unknown family kind {self.kind!r}")
        if len(self.specs) != len(self.lanes):
            raise ValueError("specs and lanes must be parallel")

    def __len__(self) -> int:
        return len(self.specs)


def plan_families(specs: Sequence[str]) -> List[SpecFamily]:
    """Group a spec grid into fused families.

    Duplicate specs collapse to one lane (the grid's answer is the same
    cell); order within a family follows first appearance.  Returns
    only non-empty families, gshare first, scalar last.  Under
    ``REPRO_KERNEL=scalar`` everything routes to the scalar family.
    """
    scalar_pin = kernels.kernel_mode() == "scalar"
    groups: Dict[str, List[Tuple[str, object]]] = {
        kind: [] for kind in kernels.family_order()
    }
    for spec in dict.fromkeys(specs):
        if scalar_pin:
            groups["scalar"].append((spec, None))
            continue
        kind, lane = kernels.kernel_for_spec(spec)
        groups[kind].append((spec, lane))
    return [
        SpecFamily(
            kind=kind,
            specs=tuple(spec for spec, _ in members),
            lanes=tuple(lane for _, lane in members),
        )
        for kind, members in groups.items()
        if members
    ]


def fused_mode() -> str:
    """The ``REPRO_FUSED`` knob: ``auto`` (default), ``on`` or ``off``."""
    mode = os.environ.get("REPRO_FUSED", "auto").strip().lower() or "auto"
    if mode not in ("auto", "on", "off"):
        raise ValueError(f"REPRO_FUSED must be auto/on/off, got {mode!r}")
    return mode


def fused_active(mode: Optional[str] = None) -> bool:
    """Whether batchable families should run through the fused pass.

    ``auto`` requires the compiled driver — the stacked-numpy fallbacks
    are bit-identical but not faster than the per-trace batched kernels
    they would replace, so auto degrades to those (health-reported)
    rather than change engines for nothing.
    """
    mode = fused_mode() if mode is None else mode
    if mode == "off":
        return False
    if mode == "on":
        return True
    from repro.sim import _cstep

    if _cstep.available():
        return True
    from repro import health

    health.emit(
        "fused-planner",
        "fused",
        "batched",
        reason=_cstep.unavailable_reason() or "",
        severity="degraded",
    )
    return False


def _scalar_rates(specs: Sequence[str], trace: BranchTrace) -> List[float]:
    from repro import health
    from repro.core.registry import make_predictor
    from repro.sim.engine import run

    if kernels.kernel_mode() == "scalar":
        reason = "REPRO_KERNEL=scalar pin"
    else:
        schemes = sorted({spec.split(":", 1)[0] for spec in specs})
        reason = "unfusable scheme(s): " + ", ".join(schemes)
        kernels.planner_vetoes(specs)
    health.emit(
        "sweep-planner",
        "fused",
        "scalar",
        reason=reason,
        severity="degraded",
        cells=len(specs),
    )
    return [run(make_predictor(spec), trace).misprediction_rate for spec in specs]


def family_rates(
    family: SpecFamily, trace: BranchTrace, fused: Optional[bool] = None
) -> Dict[str, float]:
    """Misprediction rate of every spec in one family on one trace.

    ``fused`` pins the engine choice (the sweep entry points resolve
    :func:`fused_active` once per call rather than once per family);
    ``None`` resolves it here.  Scalar families always run per-cell and
    report the degradation.
    """
    if family.kind == "scalar":
        return dict(zip(family.specs, _scalar_rates(family.specs, trace)))
    if family.kind not in ("gshare", "bimode"):
        rates = kernels.family_rates(
            family.kind, family.specs, family.lanes, trace
        )
        return dict(zip(family.specs, rates))
    use_fused = fused_active() if fused is None else fused
    if (
        use_fused
        and kernels.kernel_mode() == "numpy"
        and os.environ.get("REPRO_FUSED", "").strip().lower() != "on"
    ):
        # REPRO_KERNEL=numpy pins the fused families to their pure-numpy
        # lane kernels too; an explicit REPRO_FUSED=on wins over it.
        use_fused = False
    if family.kind == "gshare":
        fn = gshare_family_rates if use_fused else gshare_lane_rates
    else:
        fn = bimode_family_rates if use_fused else bimode_lane_rates
    return dict(zip(family.specs, fn(list(family.lanes), trace)))


def _scalar_detailed(
    specs: Sequence[str], trace: BranchTrace, dmode: str
) -> List[Tuple[object, object, int]]:
    """Per-cell scalar Section-4 cells for an unbatchable family."""
    from repro import health
    from repro.core.registry import make_predictor

    if dmode == "batch":
        schemes = sorted({spec.split(":", 1)[0] for spec in specs})
        raise RuntimeError(
            "REPRO_DETAILED_KERNEL=batch but scheme(s) "
            f"{', '.join(schemes)} have no usable batch attribution kernel"
        )
    if kernels.kernel_mode() == "scalar":
        reason = "REPRO_KERNEL=scalar pin"
    elif dmode == "scalar":
        reason = "REPRO_DETAILED_KERNEL=scalar pin"
    else:
        schemes = sorted({spec.split(":", 1)[0] for spec in specs})
        reason = "unfusable scheme(s): " + ", ".join(schemes)
        kernels.planner_vetoes(specs)
    health.engine_used(
        "detailed-kernel",
        "scalar",
        expected="scalar" if dmode == "scalar" else "batch",
        cells=len(specs),
        reason=reason,
    )
    out: List[Tuple[object, object, int]] = []
    for spec in specs:
        detailed = make_predictor(spec).simulate_detailed(trace)
        out.append(
            (detailed.result.predictions, detailed.counter_ids, detailed.num_counters)
        )
    return out


def family_detailed(
    family: SpecFamily, trace: BranchTrace
) -> Dict[str, Tuple[object, object, int]]:
    """Section-4 attribution of every spec in one family on one trace.

    Returns ``{spec: (predictions, counter_ids, num_counters)}``,
    bit-for-bit the scalar ``simulate_detailed`` loop's output from
    power-on state.  One family is one pass-shaped unit of work: ported
    schemes share precomputed history streams across their lanes
    (:func:`repro.sim.kernels.family_detailed`), gshare and bi-mode run
    their dedicated fused attribution kernels per lane, and the scalar
    family runs per-cell with the degradation health-reported.
    ``REPRO_DETAILED_KERNEL`` applies family-wide: ``scalar`` pins the
    per-branch loops, ``batch`` refuses (``RuntimeError``) any family
    that cannot run batched, and ``auto`` falls back with a health
    event — mirroring :func:`repro.sim.engine.run_detailed` exactly.
    """
    from repro.sim.engine import _detailed_kernel_mode

    dmode = _detailed_kernel_mode()
    if dmode == "scalar" or family.kind == "scalar":
        rows = _scalar_detailed(family.specs, trace, dmode)
        return dict(zip(family.specs, rows))
    if family.kind in ("gshare", "bimode"):
        from repro import health
        from repro.sim.batch import gshare_lane_detailed
        from repro.sim.batch_bimode import bimode_lane_detailed

        health.engine_used(
            "detailed-kernel", "batch", expected="batch", cells=len(family)
        )
        out: Dict[str, Tuple[object, object, int]] = {}
        for spec, lane in zip(family.specs, family.lanes):
            if family.kind == "gshare":
                preds, cids = gshare_lane_detailed(lane, trace)
                num = lane.table_size
            else:
                preds, cids = bimode_lane_detailed(lane, trace)
                num = 2 * lane.bank_size
            out[spec] = (preds, cids, num)
        return out
    entry = kernels.PORTED[family.kind]
    if dmode == "batch":
        # the pin refuses any lane the engine matrix would quietly
        # degrade to scalar (no compiler for a sequential-only scheme,
        # or an explicit REPRO_KERNEL=scalar)
        engines, _, reason = kernels._resolve_engines(
            entry, family.lanes, kernels.kernel_mode()
        )
        if "scalar" in engines:
            raise RuntimeError(
                f"REPRO_DETAILED_KERNEL=batch but {family.kind} cannot run "
                f"batched: {reason or 'REPRO_KERNEL=scalar pins the scalar engine'}"
            )
    rows = kernels.family_detailed(family.kind, family.specs, family.lanes, trace)
    return dict(zip(family.specs, rows))
