"""Simulation-engine tests, including the cross-predictor batch/step
equivalence matrix — the core correctness property of the fast paths."""

import numpy as np
import pytest

from repro.core.registry import make_predictor
from repro.sim.engine import run, run_detailed, run_steps
from tests.conftest import ALL_SPECS, make_toy_trace


@pytest.fixture(scope="module")
def trace():
    return make_toy_trace(length=1500, seed=23)


class TestEquivalence:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_batch_equals_step(self, spec, trace):
        batch = run(make_predictor(spec), trace)
        steps = run_steps(make_predictor(spec), trace)
        assert np.array_equal(batch.predictions, steps.predictions), spec

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_rerun_is_deterministic(self, spec, trace):
        p = make_predictor(spec)
        first = run(p, trace).predictions
        second = run(p, trace).predictions
        assert np.array_equal(first, second)


class TestRun:
    def test_result_fields(self, trace):
        result = run(make_predictor("gshare:index=8"), trace)
        assert result.trace_name == "toy"
        assert result.predictor_name == "gshare:index=8,hist=8"
        assert result.num_branches == len(trace)

    def test_warmup_excluded_from_result(self, trace):
        result = run(make_predictor("gshare:index=8"), trace, warmup=500)
        assert result.num_branches == len(trace) - 500

    def test_warmup_still_trains(self, trace):
        """Post-warm-up predictions must match the corresponding tail of
        a full run (warm-up only changes what's reported)."""
        full = run(make_predictor("gshare:index=8"), trace)
        warm = run(make_predictor("gshare:index=8"), trace, warmup=500)
        assert np.array_equal(full.predictions[500:], warm.predictions)

    def test_warmup_validation(self, trace):
        with pytest.raises(ValueError):
            run(make_predictor("bimodal:index=4"), trace, warmup=-1)
        with pytest.raises(ValueError):
            run(make_predictor("bimodal:index=4"), trace, warmup=len(trace) + 1)

    def test_no_reset_continues_state(self, trace):
        p = make_predictor("bimodal:index=8")
        run(p, trace)
        cold = run(make_predictor("bimodal:index=8"), trace).misprediction_rate
        warm = run(p, trace, reset=False).misprediction_rate
        assert warm <= cold  # second pass benefits from trained counters


class TestRunDetailed:
    def test_matches_plain_run(self, trace):
        plain = run(make_predictor("bimode:dir=7,hist=7,choice=7"), trace)
        detailed = run_detailed(make_predictor("bimode:dir=7,hist=7,choice=7"), trace)
        assert np.array_equal(plain.predictions, detailed.result.predictions)

    def test_records_pcs(self, trace):
        detailed = run_detailed(make_predictor("gshare:index=8"), trace)
        assert np.array_equal(detailed.pcs, trace.pcs)

    def test_every_registered_scheme_has_detailed(self, trace):
        """Since the detailed wave, every registered scheme runs the
        Section-4 pipeline (gskew was the canonical refusal before)."""
        detailed = run_detailed(make_predictor("gskew:bank=6"), trace)
        assert detailed.num_counters == 3 * (1 << 6)

    def test_warmup_slices_attribution(self, trace):
        """Warm-up must drop the same prefix from the result AND the
        per-access attribution arrays, leaving them aligned."""
        full = run_detailed(make_predictor("gshare:index=8"), trace)
        warm = run_detailed(make_predictor("gshare:index=8"), trace, warmup=500)
        assert warm.result.num_branches == len(trace) - 500
        assert np.array_equal(warm.result.predictions, full.result.predictions[500:])
        assert np.array_equal(warm.counter_ids, full.counter_ids[500:])
        assert np.array_equal(warm.pcs, full.pcs[500:])
        assert warm.num_counters == full.num_counters

    def test_warmup_matches_plain_run(self, trace):
        plain = run(make_predictor("bimode:dir=7,hist=7,choice=7"), trace, warmup=300)
        detailed = run_detailed(
            make_predictor("bimode:dir=7,hist=7,choice=7"), trace, warmup=300
        )
        assert np.array_equal(plain.predictions, detailed.result.predictions)

    def test_warmup_validation(self, trace):
        with pytest.raises(ValueError):
            run_detailed(make_predictor("gshare:index=8"), trace, warmup=-1)
        with pytest.raises(ValueError):
            run_detailed(make_predictor("gshare:index=8"), trace, warmup=len(trace) + 1)


class TestDetailedKernelDispatch:
    @pytest.mark.parametrize(
        "spec", ["gshare:index=8,hist=5", "bimode:dir=7,hist=7,choice=6"]
    )
    def test_batch_matches_scalar(self, spec, trace, monkeypatch):
        """The batch attribution kernels must reproduce the scalar loop
        bit-for-bit: predictions AND per-access counter ids."""
        monkeypatch.setenv("REPRO_DETAILED_KERNEL", "scalar")
        scalar = run_detailed(make_predictor(spec), trace)
        monkeypatch.setenv("REPRO_DETAILED_KERNEL", "batch")
        batch = run_detailed(make_predictor(spec), trace)
        assert np.array_equal(scalar.result.predictions, batch.result.predictions)
        assert np.array_equal(scalar.counter_ids, batch.counter_ids)
        assert scalar.num_counters == batch.num_counters

    def test_batch_pin_refuses_kernelless_scheme(self, trace, monkeypatch):
        """A bias filter over a sub-predictor without a kernel lane has
        no batch attribution path; under the explicit ``batch`` pin the
        dispatcher must refuse by name, never silently run scalar."""
        spec = "biasfilter:table=6,run=2,sub=bimode,sub_index=6,sub_hist=6"
        monkeypatch.setenv("REPRO_DETAILED_KERNEL", "batch")
        with pytest.raises(RuntimeError, match="biasfilter"):
            run_detailed(make_predictor(spec), trace)

    def test_auto_falls_back_without_kernel(self, trace, monkeypatch):
        """The same kernel-less scheme under ``auto`` keeps the
        health-reported scalar fallback."""
        from repro import health

        spec = "biasfilter:table=6,run=2,sub=bimode,sub_index=6,sub_hist=6"
        monkeypatch.setenv("REPRO_DETAILED_KERNEL", "auto")
        health.clear()
        auto = run_detailed(make_predictor(spec), trace)
        assert any(
            e.actual == "scalar"
            for e in health.events(component="detailed-kernel")
        )
        monkeypatch.setenv("REPRO_DETAILED_KERNEL", "scalar")
        scalar = run_detailed(make_predictor(spec), trace)
        assert np.array_equal(scalar.result.predictions, auto.result.predictions)
        assert np.array_equal(scalar.counter_ids, auto.counter_ids)

    def test_no_reset_uses_scalar_path(self, trace):
        """reset=False continues live predictor state, which the batch
        kernels (fresh lane tables) cannot honour."""
        p = make_predictor("gshare:index=8")
        run_detailed(p, trace)
        second = run_detailed(p, trace, reset=False)
        cold = run_detailed(make_predictor("gshare:index=8"), trace)
        assert (
            second.result.misprediction_rate <= cold.result.misprediction_rate
        )

    def test_invalid_mode_rejected(self, trace, monkeypatch):
        monkeypatch.setenv("REPRO_DETAILED_KERNEL", "turbo")
        with pytest.raises(ValueError):
            run_detailed(make_predictor("gshare:index=8"), trace)


class TestEmptyTrace:
    def test_all_predictors_handle_empty(self):
        from repro.traces.record import BranchTrace

        empty = BranchTrace.empty("none")
        for spec in ALL_SPECS:
            result = run(make_predictor(spec), empty)
            assert result.num_branches == 0
            assert result.misprediction_rate == 0.0
