"""Seed-stability analysis for synthetic-workload results.

Every conclusion in this reproduction rests on *synthetic* traces, so a
natural question is how much a result moves when the workload is
regenerated with a different seed.  This module runs a predictor spec
over several seeds of the same benchmark profile and summarizes the
spread, so benches and users can report "bi-mode beats gshare by
2.1 +/- 0.2 points across seeds" instead of a single draw.

The generator is deterministic in ``(profile, length, seed)``; seeds
vary both the program structure (behaviour assignment, schedule) and
the outcome randomness, so the spread measured here covers the whole
synthesis pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.registry import make_predictor
from repro.sim.engine import run
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile

__all__ = ["SeedSpread", "seed_spread", "compare_across_seeds"]


@dataclass(frozen=True)
class SeedSpread:
    """Misprediction rates of one spec across workload seeds."""

    spec: str
    benchmark: str
    rates: tuple

    @property
    def mean(self) -> float:
        return sum(self.rates) / len(self.rates)

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single seed)."""
        n = len(self.rates)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((r - mu) ** 2 for r in self.rates) / (n - 1))

    @property
    def min(self) -> float:
        return min(self.rates)

    @property
    def max(self) -> float:
        return max(self.rates)

    def __str__(self) -> str:
        return (
            f"{self.spec} on {self.benchmark}: "
            f"{100 * self.mean:.2f}% +/- {100 * self.std:.2f} "
            f"(n={len(self.rates)})"
        )


def seed_spread(
    spec: str,
    benchmark: str,
    seeds: Sequence[int] = (0, 1, 2),
    length: Optional[int] = None,
) -> SeedSpread:
    """Rates of ``spec`` on ``benchmark`` regenerated with each seed."""
    if not seeds:
        raise ValueError("need at least one seed")
    profile = get_profile(benchmark)
    rates: List[float] = []
    for seed in seeds:
        trace = generate_trace(profile, length=length, seed=seed)
        rates.append(run(make_predictor(spec), trace).misprediction_rate)
    return SeedSpread(spec=spec, benchmark=benchmark, rates=tuple(rates))


def compare_across_seeds(
    spec_a: str,
    spec_b: str,
    benchmark: str,
    seeds: Sequence[int] = (0, 1, 2),
    length: Optional[int] = None,
) -> Dict[str, float]:
    """Paired comparison of two specs over the same seeds.

    Returns the per-seed paired differences (a - b) summarized as
    ``{"mean_diff", "std_diff", "wins_b"}`` — ``wins_b`` counts seeds
    where ``spec_b`` had the lower rate.  Pairing on seeds removes the
    (large) workload-to-workload variance from the comparison.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    profile = get_profile(benchmark)
    diffs: List[float] = []
    wins_b = 0
    for seed in seeds:
        trace = generate_trace(profile, length=length, seed=seed)
        rate_a = run(make_predictor(spec_a), trace).misprediction_rate
        rate_b = run(make_predictor(spec_b), trace).misprediction_rate
        diffs.append(rate_a - rate_b)
        wins_b += rate_b < rate_a
    mean = sum(diffs) / len(diffs)
    if len(diffs) > 1:
        std = math.sqrt(sum((d - mean) ** 2 for d in diffs) / (len(diffs) - 1))
    else:
        std = 0.0
    return {"mean_diff": mean, "std_diff": std, "wins_b": float(wins_b)}
