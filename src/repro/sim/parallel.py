"""Process-parallel sweep execution.

Design-space sweeps (specs x benchmarks) are embarrassingly parallel
across traces, so :func:`evaluate_matrix_parallel` ships one work item
per benchmark to a ``ProcessPoolExecutor``.  Work items carry a
:class:`TraceRecipe` — ``(name, length, seed)`` — rather than the trace
arrays themselves: workloads are deterministic in their recipe, so
workers regenerate (or load from the shared on-disk trace cache) instead
of paying multi-megabyte pickles per task.

Workers never touch the result cache.  The parent filters out cached
cells before dispatch, collects worker rates, and merges them in input
order — deterministic regardless of completion order — with one atomic
cache write per trace (:meth:`ResultCache.put_many`).  Inside a worker
the cells route exactly as in the serial path — gshare specs through
the counter-major kernel, bi-mode specs through the batched bi-mode
kernel (:mod:`repro.sim.batch_bimode`), the rest through the scalar
engine — so parallel and serial sweeps produce byte-identical tables.

Parallelism is controlled by the ``$REPRO_JOBS`` environment knob (or an
explicit ``jobs`` argument).  ``REPRO_JOBS=1``, unset ``REPRO_JOBS``, an
unpicklable platform, or traces that carry no recipe all fall back to
the serial path, which computes bit-identical rates.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.traces.record import BranchTrace

__all__ = [
    "TraceRecipe",
    "recipe_of",
    "parallel_jobs",
    "effective_jobs",
    "evaluate_matrix_parallel",
]


@dataclass(frozen=True)
class TraceRecipe:
    """Everything a worker needs to regenerate a benchmark trace."""

    name: str
    length: int
    seed: int


def recipe_of(trace: BranchTrace) -> Optional[TraceRecipe]:
    """The trace's regeneration recipe, or ``None`` if it has none.

    Only generated workload traces (a registered profile name plus a
    ``profile_seed`` in metadata) can be rebuilt from a recipe; anything
    else must be evaluated in-process.
    """
    seed = trace.metadata.get("profile_seed")
    if seed is None or not trace.name:
        return None
    from repro.workloads.profiles import ALL_PROFILES

    if trace.name not in ALL_PROFILES:
        return None
    return TraceRecipe(name=trace.name, length=len(trace), seed=int(seed))


def parallel_jobs(default: int = 1) -> int:
    """Worker count from the ``$REPRO_JOBS`` knob.

    ``REPRO_JOBS=0`` (or ``auto``) means one worker per CPU; unset falls
    back to ``default`` (serial unless a caller opts in).
    """
    env = os.environ.get("REPRO_JOBS", "").strip()
    if not env:
        return max(1, default)
    if env.lower() == "auto":
        return os.cpu_count() or 1
    try:
        jobs = int(env)
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer or 'auto', got {env!r}")
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def effective_jobs(jobs: Optional[int]) -> int:
    """Resolve an explicit ``jobs`` argument against the env knob.

    ``None`` defers to ``$REPRO_JOBS``; ``0`` or negative means one
    worker per CPU, mirroring the knob's convention.
    """
    if jobs is None:
        return parallel_jobs()
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _worker_evaluate(
    recipe: TraceRecipe, specs: Tuple[str, ...]
) -> Tuple[str, Dict[str, float]]:
    """Regenerate one trace and evaluate every spec on it (worker side)."""
    from repro.sim.runner import evaluate_specs
    from repro.workloads.suite import load_benchmark

    trace = load_benchmark(recipe.name, length=recipe.length, seed=recipe.seed)
    return recipe.name, evaluate_specs(tuple(specs), trace, cache=None)


def evaluate_matrix_parallel(
    specs: Sequence[str],
    traces: Mapping[str, BranchTrace],
    cache=None,
    progress=None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Parallel :func:`repro.sim.runner.evaluate_matrix`.

    Splits the matrix by benchmark, evaluates missing cells in worker
    processes, and merges deterministically.  Falls back to the serial
    path (same results) when only one worker is requested or the pool
    cannot be created.
    """
    from repro.sim.runner import evaluate_specs, trace_key

    specs = list(specs)
    jobs = effective_jobs(jobs)

    # Plan: per benchmark, which cells are not already cached?
    per_bench: Dict[str, Dict[str, float]] = {}
    pending: List[Tuple[str, TraceRecipe, List[str]]] = []
    local: List[str] = []
    for bench, trace in traces.items():
        tkey = trace_key(trace)
        cached: Dict[str, float] = {}
        missing: List[str] = []
        for spec in specs:
            hit = cache.get(spec, tkey) if cache is not None else None
            if hit is not None:
                cached[spec] = hit
            else:
                missing.append(spec)
        per_bench[bench] = cached
        if not missing:
            continue
        recipe = recipe_of(trace)
        if jobs > 1 and recipe is not None:
            pending.append((bench, recipe, missing))
        else:
            local.append(bench)

    if pending:
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                futures = [
                    (bench, pool.submit(_worker_evaluate, recipe, tuple(missing)))
                    for bench, recipe, missing in pending
                ]
                results = {bench: future.result() for bench, future in futures}
        except (OSError, ValueError, RuntimeError):
            # Pool unavailable (restricted platform, spawn failure):
            # compute the pending benchmarks serially instead.
            results = {}
            local = list(dict.fromkeys(local + [bench for bench, _, _ in pending]))
        for bench, (_, rates) in results.items():
            per_bench[bench].update(rates)
            if cache is not None:
                cache.put_many(trace_key(traces[bench]), rates)

    for bench in local:
        missing = [s for s in specs if s not in per_bench[bench]]
        per_bench[bench].update(evaluate_specs(missing, traces[bench], cache=cache))

    if progress is not None:
        for bench in traces:
            for spec in specs:
                progress(spec, bench, per_bench[bench][spec])

    return {spec: {bench: per_bench[bench][spec] for bench in traces} for spec in specs}
