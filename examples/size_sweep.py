#!/usr/bin/env python
"""Size sweep — regenerate a Figure-2-style chart from the library API.

Sweeps gshare.1PHT, gshare.best and bi-mode across the paper's
0.25–32 KB cost axis on a benchmark suite and prints the misprediction
table plus an ASCII chart.  This is the programmatic version of the
``benchmarks/bench_fig2_average_sweep.py`` harness, trimmed for
interactive use (fewer sizes by default, cached results).

Run with::

    python examples/size_sweep.py [cint95|ibs] [--sizes 0.25 1 4 16]
"""

from __future__ import annotations

import argparse

from repro.analysis.report import ascii_chart, ascii_table
from repro.analysis.sweep import paper_sweep
from repro.sim.runner import ResultCache
from repro.workloads.suite import load_suite, suite_names


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("suite", nargs="?", default="cint95", choices=("cint95", "ibs"))
    parser.add_argument(
        "--sizes", type=float, nargs="+", default=[0.25, 1.0, 4.0, 16.0],
        help="size points in KB",
    )
    parser.add_argument(
        "--length", type=int, default=150_000, help="trace length per benchmark"
    )
    args = parser.parse_args()

    print(f"loading {args.suite} traces ({args.length} branches each)...")
    traces = load_suite(suite_names(args.suite), length=args.length)

    print("sweeping (cached after the first run)...")
    series = paper_sweep(traces, kb_points=args.sizes, cache=ResultCache())

    headers = ["scheme"] + [f"{kb:g}KB" for kb in args.sizes]
    rows = []
    chart = {}
    for label, sweep in series.items():
        rows.append([label] + [f"{100 * p.average:.2f}%" for p in sweep.points])
        chart[label] = [(p.size_kb, p.average) for p in sweep.points]
    print()
    print(ascii_table(headers, rows, title=f"{args.suite.upper()} average misprediction"))
    print()
    print(ascii_chart(chart, title="misprediction vs size (bi-mode at true 1.5x cost)"))
    print()
    print("gshare.best picks:", [p.spec for p in series["gshare.best"].points])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
