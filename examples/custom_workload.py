#!/usr/bin/env python
"""Custom workload — build your own synthetic program and stress a predictor.

Shows the workload substrate from the bottom up: hand-built regions with
specific branch behaviours, a deterministic dispatch schedule, and a
targeted aliasing experiment — two oppositely-biased hot branches that
collide in a small gshare table, which is exactly the destructive
aliasing the bi-mode predictor removes.

Run with::

    python examples/custom_workload.py
"""

from __future__ import annotations

from repro import BiModePredictor, GSharePredictor, run
from repro.predictors import AgreePredictor
from repro.workloads import (
    BiasedBehavior,
    BranchSite,
    CorrelatedBehavior,
    LoopBehavior,
    PatternBehavior,
    Program,
    Region,
)


def build_program() -> Program:
    """A tiny program with adversarial aliasing.

    Region A's hot branch at address 0x013 is ~always taken; region B's
    hot branch at 0x023 is ~always not-taken.  In a 16-entry gshare with
    no history both map to counter 0x3 — destructive aliasing by
    construction.  The surrounding loop and correlated branches give the
    history-based predictors something to chew on as well.
    """
    region_a = Region(
        body=[
            BranchSite(address=0x013, behavior=BiasedBehavior(0.99)),
            BranchSite(address=0x014, behavior=CorrelatedBehavior(
                positions=[0], table=[False, True])),  # copies the previous outcome
        ],
        loop=BranchSite(address=0x017, behavior=LoopBehavior(trip_count=4)),
    )
    region_b = Region(
        body=[
            BranchSite(address=0x023, behavior=BiasedBehavior(0.01)),
            BranchSite(address=0x024, behavior=PatternBehavior([True, True, False])),
        ],
    )
    # strict alternation A, B, A, B ... maximizes the interference
    return Program(
        regions=[region_a, region_b],
        schedule=[[1], [0]],
        jump_prob=0.0,
        name="adversarial-aliasing",
    )


def main() -> int:
    program = build_program()
    trace = program.run(length=60_000, seed=1)
    print(f"workload: {trace.name}: {len(trace)} branches, "
          f"{trace.num_static} static, taken rate {100 * trace.taken_rate:.1f}%\n")

    predictors = [
        GSharePredictor(index_bits=4, history_bits=0),   # 16-counter bimodal-ish
        GSharePredictor(index_bits=4, history_bits=4),   # 16-counter gshare
        AgreePredictor(index_bits=4, history_bits=4, bias_index_bits=8),
        BiModePredictor(direction_index_bits=3, history_bits=3, choice_index_bits=6),
    ]
    print(f"{'predictor':<40} {'size':>7}  misprediction")
    for predictor in predictors:
        result = run(predictor, trace)
        print(
            f"{predictor.name:<40} {predictor.size_bytes():>6.1f}B"
            f"  {100 * result.misprediction_rate:6.2f}%"
        )

    print(
        "\nNote how the two ~deterministic branches at 0x013/0x023 wreck the"
        "\nplain tables (they share counter 0x3), while the choice predictor"
        "\nof bi-mode — and agree's bias bits — separate them."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
