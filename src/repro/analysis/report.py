"""Plain-text reporting: ASCII tables, ASCII line charts, CSV export.

The benchmark harness regenerates the paper's tables and figures as
text — tables print rows matching the paper's, figures print both a
rate-per-size table and a rough ASCII chart so curve shapes (who is
lower, where curves cross) are visible in a terminal or CI log.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Dict, List, Sequence

__all__ = ["ascii_table", "ascii_chart", "write_csv", "format_rate"]


def format_rate(rate: float) -> str:
    """Misprediction rate as the paper prints it (percent, 2 decimals)."""
    return f"{100.0 * rate:.2f}%"


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render a fixed-width table.

    Cells are stringified; numeric columns right-align.
    """
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def ascii_chart(
    series: Dict[str, List[tuple]],
    width: int = 72,
    height: int = 18,
    title: str = "",
    log_x: bool = True,
) -> str:
    """Plot ``label -> [(x, y), ...]`` curves as ASCII.

    ``log_x=True`` matches the paper's log2 size axis.  Each series gets
    a distinct marker; the legend maps markers to labels.
    """
    markers = "o*x+#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title or "(empty chart)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]

    def tx(x: float) -> float:
        return math.log2(x) if log_x else x

    x_lo, x_hi = min(tx(x) for x in xs), max(tx(x) for x in xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for _ in range(height)]
    for marker, (label, pts) in zip(markers, series.items()):
        for x, y in pts:
            col = round((tx(x) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y_hi - y) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_value = y_hi - (y_hi - y_lo) * i / (height - 1)
        lines.append(f"{100 * y_value:6.2f}% |" + "".join(row))
    axis_label = "size (KB, log scale)" if log_x else "x"
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(
        " " * 9
        + f"{2 ** x_lo if log_x else x_lo:g}"
        + " " * max(1, width - 12)
        + f"{2 ** x_hi if log_x else x_hi:g}  {axis_label}"
    )
    legend = "   ".join(
        f"{marker}={label}" for marker, label in zip(markers, series.keys())
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def write_csv(path, headers: Sequence[str], rows: Sequence[Sequence]) -> Path:
    """Write rows to CSV (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        writer.writerows(rows)
    return path
