"""Figure 6 — per-counter bias breakdown for bi-mode on gcc.

The paper's Figure 6 runs a bi-mode with a 128-counter choice predictor
and two 128-counter direction banks (256 direction counters total —
comparable to the Figure 5 predictors plus 50% for the choice table)
and shows that the dominant class dominates most direction counters:
the WB area stays as small as history-indexed gshare's while the
non-dominant area nearly vanishes.

Shape checks against the Figure 5 measurement on the same trace:

* bi-mode WB area ≈ history-indexed gshare's WB area (small);
* bi-mode non-dominant area < history-indexed gshare's;
* bi-mode dominant area > history-indexed gshare's.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    detailed_summaries,
    emit_table,
    load_detailed_trace,
    results_dir,
)
from repro.analysis.report import write_csv

BIMODE_SPEC = "bimode:dir=7,hist=7,choice=7"  # 2x128 direction + 128 choice
GSHARE_SPEC = "gshare:index=8,hist=8"  # the Figure 5 history-indexed reference
ADDRESS_SPEC = "gshare:index=8,hist=2"

SCHEMES = [
    ("bi-mode", BIMODE_SPEC),
    ("history-indexed", GSHARE_SPEC),
    ("address-indexed", ADDRESS_SPEC),
]


@pytest.mark.benchmark(group="fig6")
def test_fig6_bimode_bias_breakdown(benchmark):
    trace = load_detailed_trace("gcc")

    def compute():
        summaries = detailed_summaries(
            [spec for _, spec in SCHEMES],
            {"gcc": trace},
            stem="fig6_gcc",
            include_bias_table=True,
        )
        return {label: summaries[spec]["gcc"] for label, spec in SCHEMES}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for label, summary in results.items():
        areas = summary["bias_areas"]
        rows.append(
            [
                label,
                len(summary["bias_table"]),
                f"{100 * areas['dominant']:.1f}%",
                f"{100 * areas['non_dominant']:.1f}%",
                f"{100 * areas['wb']:.1f}%",
            ]
        )
    emit_table(
        "fig6_bias_areas",
        "Figure 6 — bi-mode bias areas vs Figure 5 references, gcc",
        ["scheme", "counters used", "dominant", "non-dominant", "WB"],
        rows,
    )
    write_csv(
        results_dir() / "fig6_bimode_counters.csv",
        ["dominant", "non_dominant", "wb"],
        results["bi-mode"]["bias_table"],
    )

    bimode = results["bi-mode"]["bias_areas"]
    history = results["history-indexed"]["bias_areas"]
    address = results["address-indexed"]["bias_areas"]

    assert bimode["non_dominant"] < history["non_dominant"], (
        "bi-mode must reduce the non-dominant area"
    )
    assert bimode["dominant"] > history["dominant"], (
        "bi-mode must enlarge the dominant area"
    )
    # WB advantage of history preserved: bi-mode's WB area stays well
    # below the address-indexed scheme's
    assert bimode["wb"] < address["wb"]
    # and in the history-indexed scheme's neighbourhood (paper: "as small")
    assert bimode["wb"] < 1.5 * history["wb"]
