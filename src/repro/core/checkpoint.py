"""Predictor checkpointing.

Long-trace studies want to pause and resume: simulate a chunk, save the
predictor's architectural state, continue later (or fork the state to
compare update policies from a common warm point).  This module
serializes any registered predictor to a JSON-friendly dict and back.

The format is explicit per scheme — no pickling, no attribute-walking
magic — so checkpoints are inspectable, diffable, and safe to load.
Every dict carries the predictor's ``spec-name`` and the package
version; :func:`restore_state` validates the name so a checkpoint can
only be restored into an identically-configured predictor.

Round-trip guarantee (tested property): for every predictor,
``simulate(first); save; restore into fresh; simulate(second)`` equals
the uninterrupted ``simulate(first + second)``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro._version import __version__
from repro.core.bimode import BiModePredictor
from repro.core.interfaces import BranchPredictor
from repro.predictors.agree import AgreePredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.filtered import BiasFilterPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gskew import GSkewPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.static_ import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BTFNTPredictor,
)
from repro.predictors.tournament import TournamentPredictor
from repro.predictors.trimode import TriModePredictor
from repro.predictors.twolevel import TwoLevelPredictor
from repro.predictors.yags import YagsPredictor

__all__ = ["predictor_state", "restore_state", "save_checkpoint", "load_checkpoint"]


# -- per-scheme state extractors -------------------------------------------------


def _state_gshare(p: GSharePredictor) -> dict:
    return {"table": list(p.table.states), "ghr": p.ghr.value}


def _load_gshare(p: GSharePredictor, s: dict) -> None:
    p.table.fill(s["table"])
    p.ghr.value = int(s["ghr"]) & p.ghr.mask


def _state_bimodal(p: BimodalPredictor) -> dict:
    return {"table": list(p.table.states)}


def _load_bimodal(p: BimodalPredictor, s: dict) -> None:
    p.table.fill(s["table"])


def _state_bimode(p: BiModePredictor) -> dict:
    return {
        "taken_bank": list(p.taken_bank.states),
        "not_taken_bank": list(p.not_taken_bank.states),
        "choice": list(p.choice.states),
        "ghr": p.ghr.value,
    }


def _load_bimode(p: BiModePredictor, s: dict) -> None:
    p.taken_bank.fill(s["taken_bank"])
    p.not_taken_bank.fill(s["not_taken_bank"])
    p.choice.fill(s["choice"])
    p.ghr.value = int(s["ghr"]) & p.ghr.mask


def _state_trimode(p: TriModePredictor) -> dict:
    return {
        "banks": [list(bank.states) for bank in p.banks],
        "choice": list(p.choice.states),
        "ghr": p.ghr.value,
    }


def _load_trimode(p: TriModePredictor, s: dict) -> None:
    for bank, states in zip(p.banks, s["banks"]):
        bank.fill(states)
    p.choice.fill(s["choice"])
    p.ghr.value = int(s["ghr"]) & p.ghr.mask


def _state_twolevel(p: TwoLevelPredictor) -> dict:
    state = {"table": list(p.table.states)}
    if p.per_address:
        state["bht"] = list(p.bht.registers)
    else:
        state["ghr"] = p.ghr.value
    return state


def _load_twolevel(p: TwoLevelPredictor, s: dict) -> None:
    p.table.fill(s["table"])
    if p.per_address:
        registers = [int(r) for r in s["bht"]]
        if len(registers) != len(p.bht.registers):
            raise ValueError("BHT size mismatch")
        p.bht.registers = registers
    else:
        p.ghr.value = int(s["ghr"]) & p.ghr.mask


def _state_agree(p: AgreePredictor) -> dict:
    return {
        "table": list(p.table.states),
        "ghr": p.ghr.value,
        "bias_bits": [int(b) for b in p.bias_bits],
        "bias_valid": [int(b) for b in p.bias_valid],
    }


def _load_agree(p: AgreePredictor, s: dict) -> None:
    p.table.fill(s["table"])
    p.ghr.value = int(s["ghr"]) & p.ghr.mask
    if len(s["bias_bits"]) != len(p.bias_bits):
        raise ValueError("bias table size mismatch")
    p.bias_bits = [bool(b) for b in s["bias_bits"]]
    p.bias_valid = [bool(b) for b in s["bias_valid"]]


def _state_gskew(p: GSkewPredictor) -> dict:
    return {"banks": [list(b.states) for b in p.banks], "ghr": p.ghr.value}


def _load_gskew(p: GSkewPredictor, s: dict) -> None:
    for bank, states in zip(p.banks, s["banks"]):
        bank.fill(states)
    p.ghr.value = int(s["ghr"]) & p.ghr.mask


def _state_yags(p: YagsPredictor) -> dict:
    return {
        "choice": list(p.choice.states),
        "ghr": p.ghr.value,
        "taken_cache": {
            "tags": list(p.taken_cache.tags),
            "counters": list(p.taken_cache.counters),
        },
        "not_taken_cache": {
            "tags": list(p.not_taken_cache.tags),
            "counters": list(p.not_taken_cache.counters),
        },
    }


def _load_yags(p: YagsPredictor, s: dict) -> None:
    p.choice.fill(s["choice"])
    p.ghr.value = int(s["ghr"]) & p.ghr.mask
    for cache, payload in (
        (p.taken_cache, s["taken_cache"]),
        (p.not_taken_cache, s["not_taken_cache"]),
    ):
        if len(payload["tags"]) != len(cache.tags):
            raise ValueError("cache size mismatch")
        cache.tags = [int(t) for t in payload["tags"]]
        cache.counters = [int(c) for c in payload["counters"]]


def _state_tournament(p: TournamentPredictor) -> dict:
    return {
        "meta": list(p.meta.states),
        "component_a": predictor_state(p.component_a),
        "component_b": predictor_state(p.component_b),
    }


def _load_tournament(p: TournamentPredictor, s: dict) -> None:
    p.meta.fill(s["meta"])
    restore_state(p.component_a, s["component_a"])
    restore_state(p.component_b, s["component_b"])


def _state_biasfilter(p: BiasFilterPredictor) -> dict:
    return {
        "directions": [int(d) for d in p.directions],
        "runs": list(p.runs),
        "sub": predictor_state(p.sub_predictor),
    }


def _load_biasfilter(p: BiasFilterPredictor, s: dict) -> None:
    if len(s["runs"]) != len(p.runs):
        raise ValueError("filter size mismatch")
    p.directions = [bool(d) for d in s["directions"]]
    p.runs = [int(r) for r in s["runs"]]
    restore_state(p.sub_predictor, s["sub"])


def _state_perceptron(p: PerceptronPredictor) -> dict:
    return {"weights": [list(row) for row in p.weights], "ghr": p.ghr.value}


def _load_perceptron(p: PerceptronPredictor, s: dict) -> None:
    rows = [[int(w) for w in row] for row in s["weights"]]
    if len(rows) != len(p.weights) or any(
        len(row) != p.history_bits + 1 for row in rows
    ):
        raise ValueError("weight table shape mismatch")
    p.weights = rows
    p.ghr.value = int(s["ghr"]) & p.ghr.mask


def _state_static(p) -> dict:
    return {}


def _load_static(p, s: dict) -> None:
    pass


_HANDLERS: Dict[type, tuple] = {
    GSharePredictor: (_state_gshare, _load_gshare),
    BimodalPredictor: (_state_bimodal, _load_bimodal),
    BiModePredictor: (_state_bimode, _load_bimode),
    TriModePredictor: (_state_trimode, _load_trimode),
    TwoLevelPredictor: (_state_twolevel, _load_twolevel),
    AgreePredictor: (_state_agree, _load_agree),
    GSkewPredictor: (_state_gskew, _load_gskew),
    YagsPredictor: (_state_yags, _load_yags),
    TournamentPredictor: (_state_tournament, _load_tournament),
    BiasFilterPredictor: (_state_biasfilter, _load_biasfilter),
    PerceptronPredictor: (_state_perceptron, _load_perceptron),
    AlwaysTakenPredictor: (_state_static, _load_static),
    AlwaysNotTakenPredictor: (_state_static, _load_static),
    BTFNTPredictor: (_state_static, _load_static),
}


def _handler(predictor: BranchPredictor) -> tuple:
    for klass in type(predictor).__mro__:
        if klass in _HANDLERS:
            return _HANDLERS[klass]
    raise TypeError(f"no checkpoint handler for {type(predictor).__name__}")


def predictor_state(predictor: BranchPredictor) -> dict:
    """Architectural state of ``predictor`` as a JSON-friendly dict."""
    extract, _ = _handler(predictor)
    return {
        "name": predictor.name,
        "version": __version__,
        "state": extract(predictor),
    }


def restore_state(predictor: BranchPredictor, checkpoint: dict) -> None:
    """Load a :func:`predictor_state` dict into ``predictor``.

    The target must have the same configuration (matched by its
    ``name``); mismatches raise ``ValueError``.
    """
    if checkpoint.get("name") != predictor.name:
        raise ValueError(
            f"checkpoint is for {checkpoint.get('name')!r}, "
            f"target is {predictor.name!r}"
        )
    _, load = _handler(predictor)
    load(predictor, checkpoint["state"])


def save_checkpoint(predictor: BranchPredictor, path) -> Path:
    """Write the predictor's state to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(predictor_state(predictor)))
    return path


def load_checkpoint(predictor: BranchPredictor, path) -> None:
    """Restore state written by :func:`save_checkpoint`."""
    restore_state(predictor, json.loads(Path(path).read_text()))
