"""Unit tests for the cached multi-run orchestration."""

import json

import pytest

from repro.sim.runner import ResultCache, evaluate, evaluate_matrix, trace_key
from tests.conftest import make_toy_trace


@pytest.fixture
def trace():
    t = make_toy_trace(length=800)
    t.metadata["profile_seed"] = 0
    return t


class TestTraceKey:
    def test_includes_name_length_seed(self, trace):
        assert trace_key(trace) == "toy-n800-s0"

    def test_anonymous_trace(self):
        t = make_toy_trace(length=10)
        t.name = ""
        assert trace_key(t).startswith("anon-")


class TestResultCache:
    def test_put_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("gshare:index=8,hist=8", "toy-n800-s0", 0.125)
        assert cache.get("gshare:index=8,hist=8", "toy-n800-s0") == 0.125

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("x", "y") is None

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put("spec", "tkey", 0.5)
        assert ResultCache(tmp_path).get("spec", "tkey") == 0.5

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("spec", "tkey", 0.5)
        (tmp_path / "results" / "tkey.json").write_text("{not json")
        assert ResultCache(tmp_path).get("spec", "tkey") is None

    def test_one_file_per_trace(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", "t1", 0.1)
        cache.put("b", "t1", 0.2)
        cache.put("a", "t2", 0.3)
        files = sorted(p.name for p in (tmp_path / "results").iterdir())
        assert files == ["t1.json", "t2.json"]
        data = json.loads((tmp_path / "results" / "t1.json").read_text())
        assert data == {"a": 0.1, "b": 0.2}


class TestEvaluate:
    def test_computes_rate(self, trace):
        rate = evaluate("gshare:index=8,hist=8", trace)
        assert 0.0 <= rate <= 1.0

    def test_uses_cache(self, trace, tmp_path):
        cache = ResultCache(tmp_path)
        first = evaluate("gshare:index=8,hist=8", trace, cache=cache)
        # poison the cache to prove the second call reads it
        cache.put("gshare:index=8,hist=8", trace_key(trace), 0.999)
        second = evaluate("gshare:index=8,hist=8", trace, cache=cache)
        assert second == 0.999
        assert first != second

    def test_matrix(self, trace, tmp_path):
        other = make_toy_trace(length=400, seed=9)
        other.name = "other"
        matrix = evaluate_matrix(
            ["bimodal:index=6", "gshare:index=6,hist=6"],
            {"toy": trace, "other": other},
            cache=ResultCache(tmp_path),
        )
        assert set(matrix) == {"bimodal:index=6", "gshare:index=6,hist=6"}
        assert set(matrix["bimodal:index=6"]) == {"toy", "other"}

    def test_matrix_progress_callback(self, trace):
        calls = []
        evaluate_matrix(
            ["bimodal:index=4"],
            {"toy": trace},
            progress=lambda spec, bench, rate: calls.append((spec, bench)),
        )
        assert calls == [("bimodal:index=4", "toy")]
