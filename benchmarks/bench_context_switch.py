"""Context-switch interference — the IBS motivation, measured.

The paper uses IBS traces precisely because they interleave kernel and
user activity: realistic workloads context-switch, and predictor state
is polluted across switches.  This bench interleaves two benchmarks'
traces at several switch periods and measures how much each scheme
degrades relative to running the workloads back to back.

Expected shapes:

* interleaving never helps; shorter periods hurt more;
* the purely per-address bimodal table is the most robust (its state
  is per-branch, and the two workloads' hot branches mostly occupy
  different slots), while long-history schemes lose the most — their
  (pc, history) working set doubles and histories cross workloads at
  every switch;
* bi-mode degrades no more than gshare (its choice predictor re-steers
  quickly after a switch).
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_length, emit_table
from repro.core.registry import make_predictor
from repro.sim.engine import run
from repro.traces.filters import interleave
from repro.workloads.suite import load_benchmark

PERIODS = [200, 2_000, 20_000]
SCHEMES = [
    ("bimodal", "bimodal:index=12"),
    ("gshare", "gshare:index=12,hist=12"),
    ("bi-mode", "bimode:dir=11,hist=11,choice=11"),
]


def _run():
    length = min(150_000, bench_length("xlisp"))
    a = load_benchmark("xlisp", length=length)
    b = load_benchmark("groff", length=length)
    out = {}
    for label, spec in SCHEMES:
        solo_a = run(make_predictor(spec), a)
        solo_b = run(make_predictor(spec), b)
        solo = (solo_a.num_mispredictions + solo_b.num_mispredictions) / (
            len(a) + len(b)
        )
        out[(label, "solo")] = solo
        for period in PERIODS:
            merged = interleave(a, b, period=period, name=f"mix{period}")
            out[(label, period)] = run(
                make_predictor(spec), merged
            ).misprediction_rate
    return out


@pytest.mark.benchmark(group="context-switch")
def test_context_switch_interference(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for label, _ in SCHEMES:
        solo = table[(label, "solo")]
        row = [label, f"{100 * solo:.2f}%"]
        for period in PERIODS:
            mixed = table[(label, period)]
            row.append(f"{100 * mixed:.2f}% (+{100 * (mixed - solo):.2f})")
        rows.append(row)
    emit_table(
        "context_switch",
        "Context-switch interference (xlisp x groff, switch period in branches)",
        ["scheme", "back-to-back"] + [f"every {p}" for p in PERIODS],
        rows,
    )

    for label, _ in SCHEMES:
        solo = table[(label, "solo")]
        # interleaving never helps (tolerate sub-0.1pt noise)
        for period in PERIODS:
            assert table[(label, period)] >= solo - 1e-3, (label, period)
        # shorter periods hurt at least as much as the longest
        assert table[(label, PERIODS[0])] >= table[(label, PERIODS[-1])] - 1e-3

    # bimodal's absolute degradation is the smallest of the three
    def degradation(label):
        return table[(label, PERIODS[0])] - table[(label, "solo")]

    assert degradation("bimodal") <= degradation("gshare") + 1e-3
