"""Stable O(n) grouping of accesses by small-integer key.

The counter-major kernels (:mod:`repro.sim.batch`) and the Section-4
substream analysis (:mod:`repro.analysis.bias`,
:mod:`repro.analysis.interference`) all need the same primitive: a
permutation that groups a stream of small-integer keys by value while
preserving time order inside each group — i.e. a *stable counting
sort*.  ``np.argsort(kind="stable")`` delivers the identical
permutation, but as a comparison/radix sort over the full word width it
costs more than everything the callers do with the result; scipy's
sparse ``coo_tocsr`` kernel is exactly a C counting sort over
``num_buckets`` bins and runs an order of magnitude faster.

:func:`stable_group_order` picks the C kernel when scipy is present and
falls back to the numpy sort otherwise — the permutation is the same
either way, so everything downstream stays bit-identical.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stable_group_order"]

try:  # scipy ships a C counting sort (COO->CSR); optional, numpy fallback below
    from scipy.sparse import _sparsetools as _scipy_sparsetools

    _COO_TOCSR = getattr(_scipy_sparsetools, "coo_tocsr", None)
except ImportError:  # pragma: no cover - exercised only without scipy
    _COO_TOCSR = None


def stable_group_order(keys: np.ndarray, num_buckets: int) -> np.ndarray:
    """Permutation grouping ``keys`` by value, stable in time.

    ``keys`` must hold integers in ``[0, num_buckets)``.  Equivalent to
    ``np.argsort(keys, kind="stable")`` but O(n + num_buckets) via
    scipy's C counting sort when available.
    """
    n = len(keys)
    if (
        _COO_TOCSR is None
        or n >= np.iinfo(np.int32).max
        or num_buckets >= np.iinfo(np.int32).max
    ):
        return np.argsort(keys, kind="stable")
    keys = np.ascontiguousarray(keys, dtype=np.int32)
    times = np.arange(n, dtype=np.int32)
    indptr = np.empty(num_buckets + 1, dtype=np.int32)
    cols = np.empty(n, dtype=np.int32)
    order = np.empty(n, dtype=np.int32)
    _COO_TOCSR(num_buckets, n, n, keys, times, times, indptr, cols, order)
    return order
