"""Process-parallel sweep execution with supervised, fault-tolerant workers.

Design-space sweeps (specs x benchmarks) are embarrassingly parallel
across traces, so :func:`evaluate_matrix_parallel` ships one work item
per benchmark to a ``ProcessPoolExecutor``.  Work items carry a
:class:`TraceRecipe` — ``(name, length, seed)`` — rather than the trace
arrays themselves: workloads are deterministic in their recipe, so
workers regenerate (or load from the shared on-disk trace cache) instead
of paying multi-megabyte pickles per task.

Every task is individually supervised (:class:`TaskPolicy`):

* a configurable per-task timeout (``$REPRO_TASK_TIMEOUT`` seconds) —
  an expired task's pool is abandoned and reseeded so stragglers cannot
  wedge the sweep;
* bounded retries with exponential backoff (``$REPRO_TASK_RETRIES``,
  ``$REPRO_TASK_BACKOFF``), including a reseeded pool after a
  ``BrokenProcessPool`` (a worker killed mid-task);
* completed results are always salvaged — one crashed worker never
  discards, or recomputes, a benchmark whose worker already finished;
* a task that exhausts its retries gets one final in-parent serial
  attempt, and if that also fails it is quarantined into a structured
  :class:`FailedCell` (exception type, message, traceback, attempt
  count) attached to the returned :class:`SweepResult` instead of
  poisoning the matrix.

Workers never touch the result cache.  The parent filters out cached
(and journalled — see :class:`repro.sim.journal.SweepJournal`) cells
before dispatch, merges each worker's rates *as it completes* — into
the matrix, the cache, and the journal — and the final matrix is
assembled in input order, deterministic regardless of completion order.
Inside a worker the cells route exactly as in the serial path, so
parallel and serial sweeps produce byte-identical tables.

Degradations (pool unavailable -> serial, worker retries, quarantined
cells) are reported through :mod:`repro.health`.

Parallelism is controlled by the ``$REPRO_JOBS`` environment knob (or an
explicit ``jobs`` argument).  ``REPRO_JOBS=1``, unset ``REPRO_JOBS``, an
unpicklable platform, or traces that carry no recipe all fall back to
the serial path, which computes bit-identical rates.
"""

from __future__ import annotations

import os
import time
import traceback as _tb
from collections import deque
from contextlib import contextmanager
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import health
from repro.faults import fault_point
from repro.traces.record import BranchTrace

__all__ = [
    "TraceRecipe",
    "TaskPolicy",
    "FailedCell",
    "SweepResult",
    "recipe_of",
    "parallel_jobs",
    "effective_jobs",
    "evaluate_matrix_parallel",
]


@dataclass(frozen=True)
class TraceRecipe:
    """Everything a worker needs to regenerate a benchmark trace."""

    name: str
    length: int
    seed: int


def recipe_of(trace: BranchTrace) -> Optional[TraceRecipe]:
    """The trace's regeneration recipe, or ``None`` if it has none.

    Only generated workload traces (a registered profile name plus a
    ``profile_seed`` in metadata) can be rebuilt from a recipe; anything
    else must be evaluated in-process.
    """
    seed = trace.metadata.get("profile_seed")
    if seed is None or not trace.name:
        return None
    from repro.workloads.profiles import ALL_PROFILES

    if trace.name not in ALL_PROFILES:
        return None
    return TraceRecipe(name=trace.name, length=len(trace), seed=int(seed))


def parallel_jobs(default: int = 1) -> int:
    """Worker count from the ``$REPRO_JOBS`` knob.

    ``REPRO_JOBS=0`` (or ``auto``) means one worker per CPU; unset falls
    back to ``default`` (serial unless a caller opts in).
    """
    env = os.environ.get("REPRO_JOBS", "").strip()
    if not env:
        return max(1, default)
    if env.lower() == "auto":
        return os.cpu_count() or 1
    try:
        jobs = int(env)
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer or 'auto', got {env!r}")
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def effective_jobs(jobs: Optional[int]) -> int:
    """Resolve an explicit ``jobs`` argument against the env knob.

    ``None`` defers to ``$REPRO_JOBS``; ``0`` or negative means one
    worker per CPU, mirroring the knob's convention.
    """
    if jobs is None:
        return parallel_jobs()
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


# -- supervision policy and fault reports -------------------------------------------


@dataclass(frozen=True)
class TaskPolicy:
    """Per-task supervision knobs for the worker pool.

    ``timeout`` is wall-clock seconds a task may run before its pool is
    abandoned and the task retried (``None`` disables); ``retries`` is
    how many *additional* pool attempts a failing task gets before the
    final in-parent serial attempt; ``backoff`` is the base of the
    exponential sleep between retries.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.1

    @classmethod
    def from_env(cls) -> "TaskPolicy":
        """Policy from ``$REPRO_TASK_TIMEOUT`` / ``_RETRIES`` / ``_BACKOFF``."""

        def _number(name: str, default: float) -> float:
            raw = os.environ.get(name, "").strip()
            if not raw:
                return default
            try:
                return float(raw)
            except ValueError:
                raise ValueError(f"{name} must be a number, got {raw!r}")

        timeout = _number("REPRO_TASK_TIMEOUT", 0.0)
        retries = int(_number("REPRO_TASK_RETRIES", 2))
        backoff = _number("REPRO_TASK_BACKOFF", 0.1)
        return cls(
            timeout=timeout if timeout > 0 else None,
            retries=max(0, retries),
            backoff=max(0.0, backoff),
        )


@dataclass(frozen=True)
class FailedCell:
    """A quarantined (benchmark, specs) task that exhausted every retry."""

    bench: str
    specs: Tuple[str, ...]
    error_type: str
    message: str
    traceback: str
    attempts: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.bench} [{len(self.specs)} specs]: {self.error_type}: "
            f"{self.message} (after {self.attempts} attempts)"
        )


class SweepResult(Dict[str, Dict[str, float]]):
    """An ``evaluate_matrix`` result dict plus fault metadata.

    Equality, iteration, and indexing behave exactly like the plain
    ``{spec: {bench: rate}}`` dict, so existing callers are unaffected;
    ``failures`` lists the quarantined cells (empty on a clean sweep).
    """

    def __init__(self, data=None, failures: Optional[Sequence[FailedCell]] = None):
        super().__init__(data or {})
        self.failures: List[FailedCell] = list(failures or [])

    @property
    def quarantined_benches(self) -> List[str]:
        return sorted({cell.bench for cell in self.failures})


class _Task:
    """One supervised (benchmark, specs) work item."""

    __slots__ = ("bench", "recipe", "missing", "attempts", "last_error", "last_tb")

    def __init__(self, bench: str, recipe: TraceRecipe, missing: List[str]):
        self.bench = bench
        self.recipe = recipe
        self.missing = list(missing)
        self.attempts = 0
        self.last_error: Optional[BaseException] = None
        self.last_tb = ""


def _worker_evaluate(
    recipe: TraceRecipe, specs: Tuple[str, ...]
) -> Tuple[str, Dict[str, float]]:
    """Regenerate one trace and evaluate every spec on it (worker side)."""
    from repro.sim.runner import evaluate_specs
    from repro.workloads.suite import load_benchmark

    fault_point("worker", bench=recipe.name)
    trace = load_benchmark(recipe.name, length=recipe.length, seed=recipe.seed)
    return recipe.name, evaluate_specs(tuple(specs), trace, cache=None)


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on wedged or dying workers."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - cancel_futures needs 3.9+
        pool.shutdown(wait=False)
    # Best effort: reclaim workers stuck in a timed-out task so they do
    # not linger until interpreter exit.  Internal attribute, so guarded.
    try:
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.terminate()
    except Exception:  # pragma: no cover - cleanup must never raise
        pass


def _run_supervised(
    tasks: Sequence[_Task],
    jobs: int,
    policy: TaskPolicy,
    on_done=None,
) -> Tuple[Dict[str, Dict[str, float]], List[_Task], List[_Task]]:
    """Drive every task through the pool under per-task supervision.

    Returns ``(done, exhausted, leftover)``: completed rates by
    benchmark, tasks that failed every pool attempt (candidates for the
    caller's serial salvage), and tasks never attempted because the pool
    itself could not be (re)created (the caller runs those through the
    ordinary serial path, no attempts charged).
    """
    done: Dict[str, Dict[str, float]] = {}
    exhausted: List[_Task] = []
    queue = deque(tasks)
    inflight: Dict[object, Tuple[_Task, float]] = {}
    pool: Optional[ProcessPoolExecutor] = None
    max_workers = max(1, min(jobs, len(tasks)))

    def _note_failure(task: _Task, exc: BaseException, kind: str) -> None:
        task.attempts += 1
        task.last_error = exc
        task.last_tb = "".join(
            _tb.format_exception(type(exc), exc, exc.__traceback__)
        )
        health.emit(
            "parallel-pool",
            "worker-ok",
            kind,
            reason=f"{task.bench}: {type(exc).__name__}: {exc}",
            severity="degraded",
            attempt=task.attempts,
        )
        if task.attempts > policy.retries:
            exhausted.append(task)
        else:
            if policy.backoff:
                time.sleep(policy.backoff * (2 ** max(0, task.attempts - 1)))
            queue.append(task)

    try:
        while queue or inflight:
            if pool is None:
                try:
                    pool = ProcessPoolExecutor(max_workers=max_workers)
                except (OSError, ValueError, RuntimeError) as exc:
                    # Pool unavailable (restricted platform, spawn
                    # failure): hand everything still outstanding back
                    # for serial execution.
                    health.emit(
                        "parallel-pool",
                        "pool",
                        "serial",
                        reason=f"{type(exc).__name__}: {exc}",
                        severity="degraded",
                        cells=len(queue) + len(inflight),
                    )
                    leftover = [task for task, _ in inflight.values()]
                    leftover.extend(queue)
                    return done, exhausted, leftover
            try:
                while queue:
                    task = queue.popleft()
                    future = pool.submit(
                        _worker_evaluate, task.recipe, tuple(task.missing)
                    )
                    inflight[future] = (task, time.monotonic())
            except (BrokenProcessPool, RuntimeError) as exc:
                queue.appendleft(task)
                for fut, (pending_task, _) in list(inflight.items()):
                    _note_failure(pending_task, exc, "pool-broken")
                inflight.clear()
                _abandon_pool(pool)
                pool = None
                continue

            tick = 0.05 if policy.timeout is not None else None
            ready, _ = wait(
                list(inflight), timeout=tick, return_when=FIRST_COMPLETED
            )
            broken: Optional[BaseException] = None
            for future in ready:
                task, _started = inflight.pop(future)
                try:
                    _, rates = future.result()
                except BrokenProcessPool as exc:
                    broken = exc
                    _note_failure(task, exc, "pool-broken")
                except Exception as exc:
                    _note_failure(task, exc, "worker-raised")
                else:
                    done[task.bench] = rates
                    if on_done is not None:
                        on_done(task, rates)
            if broken is not None:
                # The pool is poisoned: every other in-flight task is
                # charged one attempt (we cannot attribute the crash)
                # and retried on a fresh pool.
                for future, (task, _) in list(inflight.items()):
                    _note_failure(task, broken, "pool-broken")
                inflight.clear()
                _abandon_pool(pool)
                pool = None
                continue
            if policy.timeout is not None and inflight:
                now = time.monotonic()
                expired = [
                    future
                    for future, (_, started) in inflight.items()
                    if now - started > policy.timeout
                ]
                if expired:
                    for future in expired:
                        task, _ = inflight.pop(future)
                        future.cancel()
                        _note_failure(
                            task,
                            TimeoutError(
                                f"task exceeded REPRO_TASK_TIMEOUT={policy.timeout}s"
                            ),
                            "task-timeout",
                        )
                    # Innocent in-flight neighbours go back untouched:
                    # their pool is being abandoned, not their work.
                    for future, (task, _) in list(inflight.items()):
                        future.cancel()
                        queue.append(task)
                    inflight.clear()
                    _abandon_pool(pool)
                    pool = None
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    return done, exhausted, []


def _quarantine(task: _Task, exc: BaseException) -> FailedCell:
    cell = FailedCell(
        bench=task.bench,
        specs=tuple(task.missing),
        error_type=type(exc).__name__,
        message=str(exc),
        traceback="".join(_tb.format_exception(type(exc), exc, exc.__traceback__)),
        attempts=task.attempts,
    )
    health.emit(
        "sweep",
        "computed",
        "quarantined",
        reason=f"{cell.bench}: {cell.error_type}: {cell.message}",
        severity="error",
        cells=len(cell.specs),
        attempts=cell.attempts,
    )
    return cell


def evaluate_matrix_parallel(
    specs: Sequence[str],
    traces: Mapping[str, BranchTrace],
    cache=None,
    progress=None,
    jobs: Optional[int] = None,
    journal=None,
    policy: Optional[TaskPolicy] = None,
) -> SweepResult:
    """Parallel :func:`repro.sim.runner.evaluate_matrix`.

    Splits the matrix by benchmark, evaluates missing cells in
    supervised worker processes, and merges deterministically.  Cells
    already recorded in ``cache`` or ``journal`` are never recomputed;
    each completed task is merged (matrix + cache + journal) as soon as
    it finishes, so a crash or interrupt loses at most the in-flight
    tasks.  Tasks that exhaust every retry and the final serial attempt
    are quarantined on ``SweepResult.failures`` — their cells are
    omitted from the matrix rather than poisoning it.
    """
    from repro.sim.runner import evaluate_specs, trace_key

    specs = list(specs)
    jobs = effective_jobs(jobs)
    if policy is None:
        policy = TaskPolicy.from_env()

    # Plan: per benchmark, which cells are not already cached/journalled?
    per_bench: Dict[str, Dict[str, float]] = {}
    tasks: List[_Task] = []
    local: List[str] = []
    tkeys = {bench: trace_key(trace) for bench, trace in traces.items()}
    for bench, trace in traces.items():
        tkey = tkeys[bench]
        known: Dict[str, float] = {}
        missing: List[str] = []
        for spec in specs:
            hit = cache.get(spec, tkey) if cache is not None else None
            if hit is None and journal is not None:
                hit = journal.lookup(tkey, spec)
                if hit is not None and cache is not None:
                    cache.put_many(tkey, {spec: hit})
            if hit is not None:
                known[spec] = hit
            else:
                missing.append(spec)
        per_bench[bench] = known
        if not missing:
            continue
        recipe = recipe_of(trace)
        if jobs > 1 and recipe is not None:
            tasks.append(_Task(bench, recipe, missing))
        else:
            local.append(bench)

    failures: List[FailedCell] = []

    def _merge(bench: str, rates: Dict[str, float]) -> None:
        per_bench[bench].update(rates)
        if cache is not None:
            cache.put_many(tkeys[bench], rates)
        if journal is not None:
            journal.record_many(tkeys[bench], rates)

    guard = journal.guard(cache) if journal is not None else _null()
    with guard:
        if tasks:
            _, exhausted, leftover = _run_supervised(
                tasks,
                jobs,
                policy,
                on_done=lambda task, rates: _merge(task.bench, rates),
            )
            local.extend(task.bench for task in leftover)
            # Final in-parent serial attempt, then quarantine.
            for task in exhausted:
                try:
                    rates = evaluate_specs(task.missing, traces[task.bench], cache=None)
                except Exception as exc:
                    task.attempts += 1
                    failures.append(_quarantine(task, exc))
                else:
                    health.emit(
                        "parallel-pool",
                        "pool",
                        "serial-salvage",
                        reason=f"{task.bench} recovered after {task.attempts} failed attempts",
                        severity="degraded",
                        cells=len(task.missing),
                    )
                    _merge(task.bench, rates)

        for bench in dict.fromkeys(local):
            missing = [s for s in specs if s not in per_bench[bench]]
            if not missing:
                continue
            try:
                rates = evaluate_specs(missing, traces[bench], cache=None)
            except Exception as exc:
                task = _Task(bench, recipe_of(traces[bench]), missing)
                task.attempts = 1
                failures.append(_quarantine(task, exc))
            else:
                _merge(bench, rates)

    if progress is not None:
        for bench in traces:
            for spec in specs:
                if spec in per_bench[bench]:
                    progress(spec, bench, per_bench[bench][spec])

    return SweepResult(
        {
            spec: {
                bench: per_bench[bench][spec]
                for bench in traces
                if spec in per_bench[bench]
            }
            for spec in specs
        },
        failures=failures,
    )


@contextmanager
def _null():
    yield None
