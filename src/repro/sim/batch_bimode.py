"""Batched multi-lane bi-mode simulation kernel.

Why bi-mode cannot reuse the gshare kernel
------------------------------------------
The counter-major decomposition of :mod:`repro.sim.batch` relies on the
whole per-counter access stream being known up front: gshare's index
streams depend only on resolved outcomes.  Bi-mode breaks this with a
feedback loop — which direction *bank* an access lands in depends on
the live choice-counter state, and whether the choice counter trains
depends on the selected bank's prediction (the partial-update exception
of Section 2.2).  The access-to-counter mapping is therefore itself a
function of counter state and cannot be precomputed.

What is still precomputable — the global-history stream, hence the
within-bank direction index and the choice index of every access — is
hoisted out, leaving a small sequential automaton (~10 integer ops per
branch).  The kernel runs that automaton through the fastest available
of three bit-identical execution strategies:

* **compiled** — a per-pair C loop built on demand with the system
  compiler (:mod:`repro.sim._cstep`).  One to two orders of magnitude
  faster than Python stepping; used whenever a compiler is available.
* **stepped** — one numpy-stepped time loop advancing *all* lanes of
  *all* traces in the batch at once (lane-vectorized: each numpy op
  processes one time step of every pair).  Per-step cost is nearly
  independent of batch width, so it wins once a sweep supplies enough
  (configuration, benchmark) pairs; sweep callers batch the whole
  matrix into one call for exactly this reason.  A per-chunk *block
  fast path* detects spans whose touched choice counters are saturated
  in the direction of every access — there the bank routing is frozen,
  the feedback disappears, and the span is replayed through the
  counter-major machinery (:func:`repro.sim.batch.counter_scan`)
  instead of being stepped.
* **python** — a per-pair pure-Python micro loop over the precomputed
  streams; the small-batch fallback when neither of the above applies.

Strategy selection is automatic; ``REPRO_BIMODE_KERNEL`` pins it to
``c``/``numpy``/``python`` (tests use this to cover every path), and
``REPRO_NO_CC=1`` vetoes compilation.  All strategies are asserted
bit-for-bit identical to :class:`repro.core.bimode.BiModePredictor` by
the equivalence suite and the differential oracle layer
(:mod:`repro.verify`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.counters import WEAKLY_NOT_TAKEN, WEAKLY_TAKEN
from repro.core.history import global_history_stream
from repro.core.indexing import gshare_index_stream, mask
from repro.core.registry import parse_spec
from repro.sim import _cstep
from repro.sim.batch import counter_scan
from repro.traces.record import BranchTrace

__all__ = [
    "BiModeLane",
    "bimode_lane_for_spec",
    "bimode_lane_predictions",
    "bimode_lane_detailed",
    "bimode_lane_rates",
    "bimode_family_rates",
    "bimode_matrix_rates",
    "KernelStats",
    "stats",
]

#: Time-step chunk of the numpy-stepped loop (also the granularity of
#: the saturated-choice block fast path).
_CHUNK = 4096


@dataclass(frozen=True)
class BiModeLane:
    """One bi-mode configuration inside a batch."""

    dir_bits: int
    hist_bits: int
    choice_bits: int
    full_update: bool = False
    choice_uses_history: bool = False

    def __post_init__(self) -> None:
        if self.dir_bits < 0:
            raise ValueError(f"dir_bits must be >= 0, got {self.dir_bits}")
        if not 0 <= self.hist_bits <= self.dir_bits:
            raise ValueError(
                f"hist_bits ({self.hist_bits}) must be in [0, {self.dir_bits}]"
            )
        if self.choice_bits < 0:
            raise ValueError(f"choice_bits must be >= 0, got {self.choice_bits}")

    @property
    def spec(self) -> str:
        """The registry spec string naming this configuration."""
        parts = [f"dir={self.dir_bits}", f"hist={self.hist_bits}", f"choice={self.choice_bits}"]
        if self.full_update:
            parts.append("full_update=1")
        if self.choice_uses_history:
            parts.append("choice_hist=1")
        return "bimode:" + ",".join(parts)

    @property
    def bank_size(self) -> int:
        """Counters per direction bank."""
        return 1 << self.dir_bits

    @property
    def choice_size(self) -> int:
        return 1 << self.choice_bits


def bimode_lane_for_spec(spec: str) -> Optional[BiModeLane]:
    """Parse a spec string into a lane, or ``None`` if it is not a
    bi-mode configuration the batch kernel can simulate."""
    try:
        scheme, kwargs = parse_spec(spec)
    except ValueError:
        return None
    allowed = {"dir", "hist", "choice", "full_update", "choice_hist"}
    if scheme != "bimode" or not set(kwargs) <= allowed or "dir" not in kwargs:
        return None
    try:
        dir_bits = int(kwargs["dir"])
        hist_bits = int(kwargs.get("hist", dir_bits))
        choice_bits = int(kwargs.get("choice", dir_bits))
        full_update = bool(int(kwargs.get("full_update", 0)))
        choice_hist = bool(int(kwargs.get("choice_hist", 0)))
    except ValueError:
        return None
    if dir_bits < 0 or choice_bits < 0 or not 0 <= hist_bits <= dir_bits:
        return None
    return BiModeLane(
        dir_bits=dir_bits,
        hist_bits=hist_bits,
        choice_bits=choice_bits,
        full_update=full_update,
        choice_uses_history=choice_hist,
    )


@dataclass
class KernelStats:
    """Cheap strategy/fast-path counters for tests and diagnostics."""

    compiled_pairs: int = 0
    python_pairs: int = 0
    stepped_chunks: int = 0
    fastpath_chunks: int = 0

    def reset(self) -> None:
        self.compiled_pairs = 0
        self.python_pairs = 0
        self.stepped_chunks = 0
        self.fastpath_chunks = 0


#: Module-wide counters; ``stats.reset()`` before a run to observe it.
stats = KernelStats()


# -- index-stream precomputation ----------------------------------------------------


def _choice_stream(
    lane: BiModeLane, trace: BranchTrace, histories: np.ndarray
) -> np.ndarray:
    if lane.choice_uses_history:
        ci = gshare_index_stream(
            trace.pcs,
            histories,
            lane.choice_bits,
            min(lane.hist_bits, lane.choice_bits),
        )
    else:
        ci = trace.pcs & mask(lane.choice_bits)
    return ci.astype(np.int32, copy=False)


def _pair_streams(
    lane: BiModeLane,
    trace: BranchTrace,
    hist_cache: Optional[Dict[Tuple[int, int], np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full-trace ``(choice_idx, direction_idx, outcomes)`` streams."""
    key = (id(trace), lane.hist_bits)
    histories = hist_cache.get(key) if hist_cache is not None else None
    if histories is None:
        histories = global_history_stream(trace.outcomes, lane.hist_bits)
        if hist_cache is not None:
            hist_cache[key] = histories
    di = gshare_index_stream(
        trace.pcs, histories, lane.dir_bits, lane.hist_bits
    ).astype(np.int32, copy=False)
    ci = _choice_stream(lane, trace, histories)
    o = np.ascontiguousarray(trace.outcomes, dtype=np.int8)
    return np.ascontiguousarray(ci), np.ascontiguousarray(di), o


# -- per-pair strategies ------------------------------------------------------------


def _run_pair_compiled(lane: BiModeLane, trace: BranchTrace, want_ids: bool = False):
    ci, di, o = _pair_streams(lane, trace)
    nt = np.full(lane.bank_size, WEAKLY_NOT_TAKEN, dtype=np.int8)
    tk = np.full(lane.bank_size, WEAKLY_TAKEN, dtype=np.int8)
    choice = np.full(lane.choice_size, WEAKLY_TAKEN, dtype=np.int8)
    banks = np.empty(len(o), dtype=np.uint8) if want_ids else None
    preds = _cstep.bimode_pair(
        ci, di, o.view(np.uint8), nt, tk, choice, lane.full_update, banks
    )
    stats.compiled_pairs += 1
    if want_ids:
        # Global counter id: taken-bank accesses live in the upper half.
        ids = di.astype(np.int64) + banks.astype(np.int64) * lane.bank_size
        return preds.astype(bool), ids
    return preds.astype(bool)


def _run_pair_python(lane: BiModeLane, trace: BranchTrace, want_ids: bool = False):
    """Pure-Python micro loop over precomputed streams.

    Deliberately mirrors ``BiModePredictor.update`` statement for
    statement; this is the reference the vectorized strategies are
    diffed against when a compiler is absent.
    """
    ci_arr, di_arr, o_arr = _pair_streams(lane, trace)
    n = len(o_arr)
    predictions = np.empty(n, dtype=bool)
    counter_ids = np.empty(n, dtype=np.int64) if want_ids else None
    bank_size = lane.bank_size
    nt = [WEAKLY_NOT_TAKEN] * lane.bank_size
    tk = [WEAKLY_TAKEN] * lane.bank_size
    choice = [WEAKLY_TAKEN] * lane.choice_size
    full_update = lane.full_update
    ci = ci_arr.tolist()
    di = di_arr.tolist()
    outs = o_arr.tolist()
    for i in range(n):
        c = ci[i]
        d = di[i]
        taken = outs[i]
        cs = choice[c]
        choice_taken = cs >= 2
        bank = tk if choice_taken else nt
        ds = bank[d]
        final = ds >= 2
        predictions[i] = final
        if want_ids:
            counter_ids[i] = d + bank_size if choice_taken else d
        if taken:
            if ds < 3:
                bank[d] = ds + 1
        elif ds > 0:
            bank[d] = ds - 1
        if full_update:
            other = nt if choice_taken else tk
            os_ = other[d]
            if taken:
                if os_ < 3:
                    other[d] = os_ + 1
            elif os_ > 0:
                other[d] = os_ - 1
        if not (choice_taken != bool(taken) and final == bool(taken)):
            if taken:
                if cs < 3:
                    choice[c] = cs + 1
            elif cs > 0:
                choice[c] = cs - 1
    stats.python_pairs += 1
    if want_ids:
        return predictions, counter_ids
    return predictions


# -- the lane-stepped strategy -------------------------------------------------------

# New direction-counter state, indexed by (state << 1) | outcome.
_TD = np.array([0, 1, 0, 2, 1, 3, 2, 3], dtype=np.int8)
# Final prediction doubled (fin << 1), indexed by direction state.
_F2 = np.array([0, 0, 2, 2], dtype=np.int8)


def _choice_lut() -> np.ndarray:
    """New choice state, indexed by (cs << 2) | (fin << 1) | outcome.

    Encodes the partial-update exception: the choice counter is left
    alone exactly when it chose wrongly (``(cs >= 2) != outcome``) while
    the selected direction counter was right (``fin == outcome``).
    """
    lut = np.empty(16, dtype=np.int8)
    for cs in range(4):
        for fin in range(2):
            for out in range(2):
                choice_taken = cs >= 2
                if choice_taken != bool(out) and fin == out:
                    ncs = cs
                else:
                    ncs = min(3, cs + 1) if out else max(0, cs - 1)
                lut[(cs << 2) | (fin << 1) | out] = ncs
    return lut


_TC = _choice_lut()


class _SteppedBatch:
    """State and stream plumbing for the multi-pair numpy-stepped loop.

    Every pair (lane, trace) owns a slab of one flat int8 state array:
    two direction banks padded to the batch-wide maximum bank size (so
    the taken-bank offset is one shared constant) followed by its
    choice table in a separate region.  Index streams are rebuilt per
    time chunk from the trace arrays — full-trace streams for wide
    batches would be hundreds of MB — with running history registers
    carried across chunks.
    """

    def __init__(self, pairs: Sequence[Tuple[BiModeLane, BranchTrace]]):
        self.pairs = list(pairs)
        # Longest-first order lets the active set shrink as a prefix.
        self.order = sorted(
            range(len(self.pairs)), key=lambda p: -len(self.pairs[p][1])
        )
        self.lens = [len(self.pairs[p][1]) for p in self.order]
        P = len(self.pairs)
        self.max_bank = max((self.pairs[p][0].bank_size for p in self.order), default=1)
        max_choice = max((self.pairs[p][0].choice_size for p in self.order), default=1)
        self.dir_base = np.array(
            [j * 2 * self.max_bank for j in range(P)], dtype=np.int32
        )
        choice_region = P * 2 * self.max_bank
        self.choice_base = np.array(
            [choice_region + j * max_choice for j in range(P)], dtype=np.int32
        )
        self.S = np.zeros(choice_region + P * max_choice, dtype=np.int8)
        for j in range(P):
            lane = self.pairs[self.order[j]][0]
            db, cb = int(self.dir_base[j]), int(self.choice_base[j])
            self.S[db : db + lane.bank_size] = WEAKLY_NOT_TAKEN
            self.S[db + self.max_bank : db + self.max_bank + lane.bank_size] = WEAKLY_TAKEN
            self.S[cb : cb + lane.choice_size] = WEAKLY_TAKEN
        # Running global-history registers, keyed by (trace, hist_bits).
        self._ghr: Dict[Tuple[int, int], int] = {}

    def chunk_streams(self, j: int, a: int, b: int, hist_chunk: Dict) -> Tuple:
        """Local (ci, di) for sorted pair ``j`` over branches [a, b)."""
        lane, trace = self.pairs[self.order[j]]
        key = (id(trace), lane.hist_bits)
        hist = hist_chunk.get(key)
        if hist is None:
            initial = self._ghr.get(key, 0)
            hist = global_history_stream(
                trace.outcomes[a:b], lane.hist_bits, initial=initial
            )
            if lane.hist_bits:
                value = initial
                hmask = mask(lane.hist_bits)
                for taken in trace.outcomes[a:b].tolist():
                    value = ((value << 1) | (1 if taken else 0)) & hmask
                self._ghr[key] = value
            hist_chunk[key] = hist
        di = gshare_index_stream(
            trace.pcs[a:b], hist, lane.dir_bits, lane.hist_bits
        ).astype(np.int32, copy=False)
        if lane.choice_uses_history:
            ci = gshare_index_stream(
                trace.pcs[a:b],
                hist,
                lane.choice_bits,
                min(lane.hist_bits, lane.choice_bits),
            ).astype(np.int32, copy=False)
        else:
            ci = (trace.pcs[a:b] & mask(lane.choice_bits)).astype(np.int32, copy=False)
        return ci, di

    def replay_block(
        self,
        j: int,
        di_local: np.ndarray,
        choice_states: np.ndarray,
        outcomes: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Counter-major replay of one pair's chunk with frozen routing.

        Only valid when every access's choice counter is saturated in
        the direction of that access's outcome: then no choice counter
        moves during the span (training re-saturates, the partial-update
        exception at most skips), bank routing is constant per access,
        and the remaining bank automata are exactly the independent
        saturating counters the gshare machinery already solves.

        Returns ``(predictions, counter_ids)``: the selected-counter
        keys are already the global counter ids the detailed analysis
        attributes accesses to.
        """
        lane = self.pairs[self.order[j]][0]
        bank = lane.bank_size
        ct = (choice_states >= 2).astype(np.int32)
        sel_keys = di_local + ct * bank
        deltas = np.where(outcomes != 0, 1, -1).astype(np.int32)
        db = int(self.dir_base[j])
        init = np.empty(2 * bank, dtype=np.int32)
        init[:bank] = self.S[db : db + bank]
        init[bank:] = self.S[db + self.max_bank : db + self.max_bank + bank]
        if lane.full_update:
            other_keys = di_local + (1 - ct) * bank
            keys2 = np.empty(2 * len(sel_keys), dtype=np.int32)
            keys2[0::2] = sel_keys
            keys2[1::2] = other_keys
            pre, end = counter_scan(keys2, np.repeat(deltas, 2), init, 2 * bank)
            pred_states = pre[0::2]
        else:
            pred_states, end = counter_scan(sel_keys, deltas, init, 2 * bank)
        self.S[db : db + bank] = end[:bank]
        self.S[db + self.max_bank : db + self.max_bank + bank] = end[bank:]
        stats.fastpath_chunks += 1
        return pred_states >= 2, sel_keys


def _run_pairs_stepped(
    pairs: Sequence[Tuple[BiModeLane, BranchTrace]],
    want: str,
) -> List:
    """All pairs through the lane-stepped loop.

    ``want`` selects the per-pair output: ``"counts"`` (miss counts),
    ``"preds"`` (per-branch predictions) or ``"detailed"``
    (``(predictions, counter_ids)`` attribution tuples).
    """
    want_preds = want != "counts"
    want_ids = want == "detailed"
    batch = _SteppedBatch(pairs)
    P = len(batch.pairs)
    mis = [0] * P
    preds_out = [
        np.empty(len(trace), dtype=bool) if want_preds else None
        for _, trace in batch.pairs
    ]
    ids_out = [
        np.empty(len(trace), dtype=np.int64) if want_ids else None
        for _, trace in batch.pairs
    ]
    max_bank = batch.max_bank
    OFF = np.array([0, 0, max_bank, max_bank], dtype=np.int32)
    S = batch.S

    a = 0
    nmax = batch.lens[0] if P else 0
    while a < nmax:
        # Active pairs are a prefix of the longest-first order; the
        # chunk never crosses a pair's end (b stops at the shortest
        # active trace), so column sets are constant within a chunk.
        k = next((j for j, ln in enumerate(batch.lens) if ln <= a), P)
        b = min(a + _CHUNK, batch.lens[k - 1])
        L = b - a

        CI = np.empty((L, k), dtype=np.int32)
        DI = np.empty((L, k), dtype=np.int32)
        DLOC = np.empty((L, k), dtype=np.int32)
        O = np.empty((L, k), dtype=np.int8)
        hist_chunk: Dict = {}
        for j in range(k):
            ci, di = batch.chunk_streams(j, a, b, hist_chunk)
            DLOC[:, j] = di
            np.add(di, batch.dir_base[j], out=DI[:, j])
            np.add(ci, batch.choice_base[j], out=CI[:, j])
            O[:, j] = batch.pairs[batch.order[j]][1].outcomes[a:b]

        # Block fast path: a column qualifies when every access sees its
        # choice counter saturated toward that access's outcome.
        choice_states = S[CI]
        gate = np.logical_and.reduce(choice_states == O * 3, axis=0)
        fast_cols = np.flatnonzero(gate)
        slow_cols = np.flatnonzero(~gate)

        for j in fast_cols:
            fin, sel_keys = batch.replay_block(
                int(j), DLOC[:, j], choice_states[:, j], O[:, j]
            )
            p = batch.order[int(j)]
            mis[p] += int(np.count_nonzero(fin != (O[:, j] != 0)))
            if want_preds:
                preds_out[p][a:b] = fin
            if want_ids:
                ids_out[p][a:b] = sel_keys

        if slow_cols.size:
            CIs = np.ascontiguousarray(CI[:, slow_cols])
            DIs = np.ascontiguousarray(DI[:, slow_cols])
            Os = np.ascontiguousarray(O[:, slow_cols])
            F2s = np.empty((L, slow_cols.size), dtype=np.int8)
            Bs = np.empty((L, slow_cols.size), dtype=bool) if want_ids else None
            fu_local = np.flatnonzero(
                [batch.pairs[batch.order[int(j)]][0].full_update for j in slow_cols]
            )
            _step_chunk(S, OFF, CIs, DIs, Os, F2s, fu_local, max_bank, Bs)
            stats.stepped_chunks += 1

            fin01 = F2s >> 1
            wrong_per_col = np.count_nonzero(fin01 != Os, axis=0)
            for jj, j in enumerate(slow_cols):
                p = batch.order[int(j)]
                mis[p] += int(wrong_per_col[jj])
                if want_preds:
                    preds_out[p][a:b] = fin01[:, jj] != 0
                if want_ids:
                    bank_size = batch.pairs[p][0].bank_size
                    ids_out[p][a:b] = DLOC[:, j].astype(np.int64) + (
                        Bs[:, jj].astype(np.int64) * bank_size
                    )
        a = b

    if want_ids:
        return list(zip(preds_out, ids_out))
    if want_preds:
        return preds_out
    return mis


def _step_chunk(S, OFF, CIs, DIs, Os, F2s, fu_local, max_bank, Bs=None) -> None:
    """The hot loop: one numpy-vectorized time step per row, all lanes.

    Per step: gather choice states, resolve the selected bank through
    the shared padded-bank offset, gather direction states, record the
    doubled final prediction, then apply both table updates through the
    precomputed saturating-update LUTs.  All intermediates live in
    preallocated buffers; per-step cost is ~13 numpy dispatches
    regardless of batch width, which is what makes wide batches fast.
    When ``Bs`` is given it receives each access's selected bank bit.
    """
    L, width = CIs.shape
    cs = np.empty(width, dtype=np.int8)
    off = np.empty(width, dtype=np.int32)
    sel = np.empty(width, dtype=np.int32)
    ds = np.empty(width, dtype=np.int8)
    t1 = np.empty(width, dtype=np.int8)
    t2 = np.empty(width, dtype=np.int8)
    nds = np.empty(width, dtype=np.int8)
    ncs = np.empty(width, dtype=np.int8)
    has_fu = fu_local.size > 0
    for t in range(L):
        cit = CIs[t]
        dit = DIs[t]
        ot = Os[t]
        np.take(S, cit, out=cs)
        np.take(OFF, cs, out=off)
        if Bs is not None:
            np.greater_equal(cs, 2, out=Bs[t])
        np.add(dit, off, out=sel)
        np.take(S, sel, out=ds)
        f2 = F2s[t]
        np.take(_F2, ds, out=f2)
        np.left_shift(ds, 1, out=t1)
        np.bitwise_or(t1, ot, out=t1)
        np.take(_TD, t1, out=nds)
        S[sel] = nds
        if has_fu:
            # Ablation lanes train the unselected bank too; the other
            # bank sits at the complementary padded offset.
            osel = dit[fu_local] + (max_bank - off[fu_local])
            os_ = S[osel]
            S[osel] = _TD[(os_ << 1) | ot[fu_local]]
        np.left_shift(cs, 2, out=t2)
        np.bitwise_or(t2, f2, out=t2)
        np.bitwise_or(t2, ot, out=t2)
        np.take(_TC, t2, out=ncs)
        S[cit] = ncs


# -- dispatch -----------------------------------------------------------------------


def _step_min_pairs() -> int:
    """Batch width where the stepped loop overtakes per-pair stepping."""
    return int(os.environ.get("REPRO_BIMODE_STEP_MIN", "64"))


def _kernel_mode() -> str:
    mode = os.environ.get("REPRO_BIMODE_KERNEL", "").strip().lower()
    if not mode:
        # Inherit the registry-wide pin; the scheme-specific variable
        # wins when both are set.  REPRO_KERNEL=scalar maps to auto
        # here — the fused planner already routed scalar-pinned specs
        # away from this module, so a direct caller still gets the
        # fastest bit-identical engine.
        from repro.sim.kernels import kernel_mode

        mode = {"c": "c", "numpy": "numpy"}.get(kernel_mode(), "auto")
    if mode not in ("auto", "c", "numpy", "python"):
        raise ValueError(
            f"REPRO_BIMODE_KERNEL must be auto/c/numpy/python, got {mode!r}"
        )
    return mode


def _simulate_pairs(
    pairs: Sequence[Tuple[BiModeLane, BranchTrace]], want: str
) -> List:
    """Per-pair results for a batch: ``want`` is ``"counts"``
    (misprediction counts), ``"preds"`` (per-branch predictions) or
    ``"detailed"`` (``(predictions, counter_ids)`` tuples).

    Every dispatch decision is reported through :mod:`repro.health`:
    which engine actually ran the batch and — when the auto chain fell
    back from the compiled loop — why, so a sweep's final report can
    state what executed each cell.
    """
    from repro import health

    want_ids = want == "detailed"
    mode = _kernel_mode()
    if mode == "c" and not _cstep.available():
        raise RuntimeError(
            "REPRO_BIMODE_KERNEL=c but no compiled driver is available "
            "(no C compiler, or REPRO_NO_CC is set)"
        )
    use_c = mode == "c" or (mode == "auto" and _cstep.available())
    if not use_c:
        engine = (
            "numpy"
            if mode == "numpy" or (mode == "auto" and len(pairs) >= _step_min_pairs())
            else "python"
        )
    else:
        engine = "c"
    health.engine_used(
        "bimode-kernel",
        engine,
        expected="c" if mode == "auto" else mode,
        cells=len(pairs),
        reason=(_cstep.unavailable_reason() or "") if mode == "auto" and not use_c else "",
    )
    if use_c:
        results = []
        for lane, trace in pairs:
            if want_ids:
                results.append(_run_pair_compiled(lane, trace, want_ids=True))
                continue
            preds = _run_pair_compiled(lane, trace)
            results.append(
                preds
                if want == "preds"
                else int(np.count_nonzero(preds != trace.outcomes))
            )
        return results
    if engine == "numpy":
        return _run_pairs_stepped(pairs, want)
    results = []
    for lane, trace in pairs:
        if want_ids:
            results.append(_run_pair_python(lane, trace, want_ids=True))
            continue
        preds = _run_pair_python(lane, trace)
        results.append(
            preds if want == "preds" else int(np.count_nonzero(preds != trace.outcomes))
        )
    return results


# -- public API ---------------------------------------------------------------------


def bimode_lane_predictions(
    lanes: Sequence[BiModeLane], trace: BranchTrace
) -> np.ndarray:
    """Per-branch predictions of every lane over one trace.

    Returns a ``(len(lanes), len(trace))`` boolean array whose row ``k``
    is bit-for-bit what ``BiModePredictor`` configured as ``lanes[k]``
    would predict from power-on state.
    """
    lanes = list(lanes)
    predictions = np.empty((len(lanes), len(trace)), dtype=bool)
    if not lanes:
        return predictions
    for k, preds in enumerate(
        _simulate_pairs([(lane, trace) for lane in lanes], want="preds")
    ):
        predictions[k] = preds
    return predictions


def bimode_lane_detailed(
    lane: BiModeLane, trace: BranchTrace
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-access ``(predictions, counter_ids)`` of one lane (Section 4).

    Counter ids follow the scalar convention of
    ``BiModePredictor.simulate_detailed``: the selected direction
    counter's index, with taken-bank accesses offset by ``bank_size``
    (so the id space has ``2 * bank_size`` counters).  Bit-for-bit
    identical to the scalar detailed simulation under every execution
    strategy.
    """
    n = len(trace)
    if n == 0:
        return np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    preds, ids = _simulate_pairs([(lane, trace)], want="detailed")[0]
    return preds, ids


def bimode_lane_rates(
    lanes: Sequence[BiModeLane], trace: BranchTrace
) -> List[float]:
    """Misprediction rate of every lane over one trace.

    Same integer miss counts as the scalar engine, so rates agree
    byte-for-byte with ``run(make_predictor(spec), trace)``.
    """
    lanes = list(lanes)
    n = len(trace)
    if n == 0:
        return [0.0] * len(lanes)
    counts = _simulate_pairs([(lane, trace) for lane in lanes], want="counts")
    return [count / n for count in counts]


def bimode_family_rates(
    lanes: Sequence[BiModeLane], trace: BranchTrace
) -> List[float]:
    """Misprediction rate of every lane via the fused single-pass driver.

    The whole lane family advances in ONE pass over the raw trace: the
    compiled driver (:func:`repro.sim._cstep.bimode_fused`) keeps every
    lane's three tables in a shared arena, derives both index streams
    in-loop from one running 64-bit history register (each lane masks
    its own widths), and reduces to per-lane misprediction counts
    without materializing index streams or predictions.  Without the
    compiled driver — or when ``REPRO_BIMODE_KERNEL`` pins a different
    engine — the family falls back to the per-trace batched strategies
    of :func:`bimode_lane_rates` (health-reported).  Rates are
    bit-identical to the scalar engine under every path.
    """
    lanes = list(lanes)
    n = len(trace)
    if not lanes:
        return []
    if n == 0:
        return [0.0] * len(lanes)
    from repro import health

    mode = _kernel_mode()
    if mode not in ("auto", "c") or not _cstep.available():
        health.engine_used(
            "bimode-fused",
            "batched",
            expected="c",
            cells=len(lanes),
            reason=_cstep.unavailable_reason() or f"REPRO_BIMODE_KERNEL={mode}",
        )
        return bimode_lane_rates(lanes, trace)
    health.engine_used("bimode-fused", "c", cells=len(lanes))
    P = len(lanes)
    dmask = np.array([mask(lane.dir_bits) for lane in lanes], dtype=np.int64)
    dhmask = np.array([mask(lane.hist_bits) for lane in lanes], dtype=np.int64)
    cmask = np.array([mask(lane.choice_bits) for lane in lanes], dtype=np.int64)
    chmask = np.array(
        [
            mask(min(lane.hist_bits, lane.choice_bits))
            if lane.choice_uses_history
            else 0
            for lane in lanes
        ],
        dtype=np.int64,
    )
    full_update = np.array([lane.full_update for lane in lanes], dtype=np.uint8)
    nt_base = np.empty(P, dtype=np.int64)
    tk_base = np.empty(P, dtype=np.int64)
    choice_base = np.empty(P, dtype=np.int64)
    total = 0
    for j, lane in enumerate(lanes):
        nt_base[j] = total
        tk_base[j] = total + lane.bank_size
        choice_base[j] = total + 2 * lane.bank_size
        total += 2 * lane.bank_size + lane.choice_size
    tables = np.empty(total, dtype=np.int8)
    for j, lane in enumerate(lanes):
        tables[nt_base[j] : tk_base[j]] = WEAKLY_NOT_TAKEN
        tables[tk_base[j] : choice_base[j]] = WEAKLY_TAKEN
        tables[choice_base[j] : choice_base[j] + lane.choice_size] = WEAKLY_TAKEN
    miss = _cstep.bimode_fused(
        np.ascontiguousarray(trace.pcs, dtype=np.int64),
        np.ascontiguousarray(trace.outcomes).view(np.uint8),
        dmask,
        dhmask,
        cmask,
        chmask,
        full_update,
        nt_base,
        tk_base,
        choice_base,
        tables,
    )
    return [int(m) / n for m in miss]


def bimode_matrix_rates(
    cells: Sequence[Tuple[BiModeLane, BranchTrace]]
) -> List[float]:
    """Misprediction rate of every (configuration, trace) cell, batched.

    This is the sweep entry point: ``evaluate_matrix`` hands the *whole*
    bi-mode portion of a (spec, benchmark) matrix to one call, so the
    stepped strategy sees the widest possible batch (its throughput
    scales with width) and the compiled strategy amortizes stream
    precomputation per trace.
    """
    cells = list(cells)
    counts = _simulate_pairs(cells, want="counts")
    return [
        count / len(trace) if len(trace) else 0.0
        for count, (_, trace) in zip(counts, cells)
    ]
