"""Trace-driven simulation: engine, metrics, cached multi-run orchestration."""

from repro.sim.engine import run, run_detailed, run_steps
from repro.sim.fetch import FetchEngine, FetchStats
from repro.sim.metrics import (
    branch_penalty_cpi,
    misprediction_rate,
    per_branch_rates,
    steady_state_rate,
    wilson_interval,
)
from repro.sim.runner import ResultCache, evaluate, evaluate_matrix, trace_key

__all__ = [
    "FetchEngine",
    "FetchStats",
    "ResultCache",
    "branch_penalty_cpi",
    "evaluate",
    "evaluate_matrix",
    "misprediction_rate",
    "per_branch_rates",
    "run",
    "run_detailed",
    "run_steps",
    "steady_state_rate",
    "trace_key",
    "wilson_interval",
]
