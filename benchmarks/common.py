"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark module regenerates one of the paper's tables or figures:
it computes the same rows/series the paper reports (printing them and
writing CSV under ``results/``), asserts the qualitative *shape* the
paper claims, and times the heavy computation once via
``benchmark.pedantic`` so ``pytest --benchmark-only`` also reports
wall-clock costs.

Simulation cells are memoized through
:class:`repro.sim.runner.ResultCache` under the trace cache directory,
so re-running a figure after the first time is nearly free and the
figure benches share each other's cells (figure 2 averages reuse the
per-benchmark cells of figures 3 and 4).

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache root (traces + result cells).
* ``REPRO_BENCH_SCALE`` — float scale on trace lengths (default 1.0;
  use e.g. 0.1 for a quick smoke pass of the whole harness).
* ``REPRO_JOBS`` — worker processes for sweep-shaped benches (default
  serial; ``0``/``auto`` means one per CPU).
* ``REPRO_FUSED`` — fused sweep dispatch (``auto``/``on``/``off``,
  default ``auto``): evaluate each spec *family* of a grid in one pass
  over the shared trace (:mod:`repro.sim.fused`) instead of per-cell
  batched passes.  The figure benches inherit it through
  ``evaluate_matrix``; rates are bit-identical either way.
* ``REPRO_RESUME`` — resume interrupted figure sweeps from their
  journal (default ``1``; set ``0`` to discard a stale journal and
  start the sweep from scratch).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Sequence

from repro.analysis.report import ascii_table, write_csv
from repro.sim.parallel import parallel_jobs
from repro.sim.runner import ResultCache
from repro.traces.record import BranchTrace
from repro.workloads.profiles import get_profile
from repro.workloads.suite import load_benchmark, suite_names

__all__ = [
    "bench_scale",
    "bench_length",
    "bench_jobs",
    "load_bench_trace",
    "detailed_scale",
    "load_detailed_trace",
    "load_bench_suite",
    "result_cache",
    "sweep_journal",
    "payload_journal",
    "detailed_summaries",
    "results_dir",
    "emit_table",
    "PAPER_EXPECTED",
]


def bench_scale() -> float:
    """Trace-length scale factor from ``$REPRO_BENCH_SCALE``."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_jobs() -> int:
    """Sweep worker-process count from ``$REPRO_JOBS`` (default serial)."""
    return parallel_jobs(default=1)


def bench_length(name: str) -> int:
    """Benchmark trace length after scaling (min 20 K)."""
    base = get_profile(name).default_length
    return max(20_000, int(base * bench_scale()))


def load_bench_trace(name: str) -> BranchTrace:
    """The benchmark's trace at bench scale (disk-cached)."""
    return load_benchmark(name, length=bench_length(name))


def detailed_scale() -> float:
    """Extra length factor for the detailed (Section-4) figure benches.

    The batch attribution kernels make the detailed path cheap enough to
    run the bias/breakdown figures on longer traces than the rate
    sweeps; ``$REPRO_DETAILED_SCALE`` (default 4.0) multiplies on top of
    ``$REPRO_BENCH_SCALE`` for those benches only.
    """
    return float(os.environ.get("REPRO_DETAILED_SCALE", "4.0"))


def load_detailed_trace(name: str) -> BranchTrace:
    """The benchmark's trace at detailed-bench scale (disk-cached)."""
    base = get_profile(name).default_length
    length = max(20_000, int(base * bench_scale() * detailed_scale()))
    return load_benchmark(name, length=length)


def load_bench_suite(suite: str) -> Dict[str, BranchTrace]:
    """All traces of a suite (``"cint95"`` / ``"ibs"`` / ``"all"``).

    With ``$REPRO_JOBS`` > 1, cold traces are materialized into the
    store by the supervised worker pool first; warm traces are simply
    memory-mapped.
    """
    names = suite_names(suite)
    if bench_jobs() > 1:
        from repro.sim.parallel import materialize_parallel
        from repro.workloads.suite import trace_store

        store = trace_store()
        lengths = {name: bench_length(name) for name in names}
        cold = [name for name in names if not store.has(name, lengths[name], 0)]
        if len(cold) > 1:
            materialize_parallel(cold, length=lengths)
    return {name: load_bench_trace(name) for name in names}


def result_cache() -> ResultCache:
    """The shared (spec, trace) -> rate memo."""
    return ResultCache()


def _resume_disabled() -> bool:
    return os.environ.get("REPRO_RESUME", "1").strip() in ("0", "false", "no")


def sweep_journal(stem: str):
    """Crash-safe resume journal for one figure sweep.

    Keyed by the figure stem and the bench scale, so a killed sweep
    rerun at the same scale picks up exactly where it stopped
    (``$REPRO_RESUME=0`` discards the journal and starts over).
    """
    from repro.sim.journal import SweepJournal

    journal = SweepJournal.for_name(f"{stem}-scale{bench_scale():g}")
    if _resume_disabled():
        journal.discard()
    return journal


def payload_journal(stem: str):
    """Resume journal for a detailed (Section-4) analysis sweep.

    Same keying and ``$REPRO_RESUME`` behaviour as :func:`sweep_journal`,
    but cell values are summary dicts (:class:`repro.sim.journal.
    PayloadJournal`).
    """
    from repro.sim.journal import PayloadJournal

    journal = PayloadJournal.for_name(f"{stem}-detailed-scale{bench_scale():g}")
    if _resume_disabled():
        journal.discard()
    return journal


def detailed_summaries(
    specs: Sequence[str],
    traces: Dict[str, BranchTrace],
    stem: str,
    include_bias_table: bool = False,
) -> Dict[str, Dict[str, dict]]:
    """Section-4 summaries for ``specs`` x ``traces``: the benches' shared
    path into :func:`repro.sim.parallel.detailed_matrix`.

    Runs serially under the default ``$REPRO_JOBS`` and fans out across
    the supervised worker pool otherwise; either way each completed cell
    lands in the figure's payload journal, so an interrupted analysis
    bench resumes instead of re-simulating, and each cell's
    misprediction rate is fed into the shared result cache as a
    byproduct.  Quarantined cells fail the bench loudly — a figure
    computed from a partial matrix would assert against garbage.
    """
    from repro.sim.parallel import detailed_matrix

    result = detailed_matrix(
        specs,
        traces,
        cache=result_cache(),
        jobs=bench_jobs(),
        journal=payload_journal(stem),
        include_bias_table=include_bias_table,
    )
    if result.failures:
        raise RuntimeError(
            "detailed sweep quarantined cells: "
            + "; ".join(str(cell) for cell in result.failures)
        )
    return result


def results_dir() -> Path:
    """Output directory for CSV artifacts (repo-root ``results/``)."""
    root = Path(__file__).resolve().parent.parent / "results"
    root.mkdir(parents=True, exist_ok=True)
    return root


def emit_table(
    stem: str, title: str, headers: Sequence[str], rows: List[Sequence]
) -> None:
    """Print an ASCII table and write the CSV artifact."""
    print()
    print(ascii_table(headers, rows, title=title))
    path = write_csv(results_dir() / f"{stem}.csv", headers, rows)
    print(f"[written {path}]")


#: Paper-reported misprediction rates (percent), eyeballed from the
#: figures, used as *shape* references in the bench output — the
#: reproduction is not expected to match them absolutely (synthetic
#: scaled traces), only to preserve orderings and rough factors.
PAPER_EXPECTED = {
    # (figure 2) suite averages at 1 KB and 8 KB: (gshare.1PHT, gshare.best, bi-mode)
    "cint95_avg_1kb": (10.0, 9.0, 8.0),
    "cint95_avg_8kb": (8.0, 7.5, 6.5),
    "ibs_avg_1kb": (6.0, 5.0, 4.3),
    "ibs_avg_8kb": (4.0, 3.8, 3.2),
}
