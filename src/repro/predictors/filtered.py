"""Bias filtering — the paper's first future-work direction, realized.

The bi-mode paper's conclusion asks for "a cost-effective way to reduce
the weakly biased substreams".  A classic answer, rooted in the branch
classification of [Chang94], is to *filter*: notice branches that are
monotonously one-directional and predict them with a tiny per-address
structure, keeping their (information-free) streams out of the
second-level tables entirely.  The dynamic predictor's capacity is then
spent only on branches that need it — the weakly biased and the
correlated — so its substreams are less diluted.

:class:`BiasFilterPredictor` wraps any sub-predictor with a per-address
filter of small run counters:

* each filter entry tracks the current *run* of identical outcomes
  (direction bit + saturating run counter);
* when the run counter is saturated, the branch is classified
  "monotone": the filter supplies the prediction and the sub-predictor
  is **not trained** (its tables never see the branch);
* any outcome flip resets the run, returning the branch to the
  sub-predictor (which also resumes training).

With a 3-bit run counter, a branch enters the filter after 7
consecutive identical outcomes and leaves it on the first deviation —
the deviation itself is mispredicted (by the filter) but the
sub-predictor stays clean.

Design note: filtered branches are hidden from the sub-predictor
*entirely*, including its history register(s) — the variant that also
removes the near-constant history bits monotone branches contribute.
"""

from __future__ import annotations

import numpy as np

from repro.core.indexing import mask
from repro.core.interfaces import (
    BranchPredictor,
    DetailedSimulation,
    SimulationResult,
)
from repro.traces.record import BranchTrace

__all__ = ["BiasFilterPredictor"]


class BiasFilterPredictor(BranchPredictor):
    """Per-address monotone-branch filter in front of any predictor.

    Parameters
    ----------
    sub_predictor:
        The dynamic predictor receiving only unfiltered branches.
    filter_index_bits:
        log2 of the filter table size (indexed by branch address).
    run_bits:
        Width of each run counter; a branch is filtered once it shows
        ``2**run_bits - 1`` consecutive identical outcomes.
    """

    scheme = "biasfilter"

    def __init__(
        self,
        sub_predictor: BranchPredictor,
        filter_index_bits: int = 12,
        run_bits: int = 3,
    ):
        if filter_index_bits < 0:
            raise ValueError(f"filter_index_bits must be >= 0, got {filter_index_bits}")
        if run_bits < 1:
            raise ValueError(f"run_bits must be >= 1, got {run_bits}")
        self.sub_predictor = sub_predictor
        self.filter_index_bits = filter_index_bits
        self.run_bits = run_bits
        self._mask = mask(filter_index_bits)
        self._max_run = (1 << run_bits) - 1
        size = 1 << filter_index_bits
        self.directions = [False] * size
        self.runs = [0] * size

    @property
    def name(self) -> str:
        return (
            f"biasfilter:table=2^{self.filter_index_bits},run={self.run_bits}"
            f"[{self.sub_predictor.name}]"
        )

    def size_bits(self) -> int:
        """Sub-predictor counters plus filter state (1 + run_bits each)."""
        return self.sub_predictor.size_bits() + (
            (1 << self.filter_index_bits) * (1 + self.run_bits)
        )

    def reset(self) -> None:
        self.sub_predictor.reset()
        size = 1 << self.filter_index_bits
        self.directions = [False] * size
        self.runs = [0] * size

    def is_filtered(self, pc: int) -> bool:
        """Whether the branch is currently classified monotone."""
        return self.runs[pc & self._mask] >= self._max_run

    def predict(self, pc: int) -> bool:
        slot = pc & self._mask
        if self.runs[slot] >= self._max_run:
            return self.directions[slot]
        return self.sub_predictor.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        slot = pc & self._mask
        run = self.runs[slot]
        filtered = run >= self._max_run

        # the sub-predictor only sees (and trains on) unfiltered branches
        if not filtered:
            self.sub_predictor.update(pc, taken)

        if run == 0 or self.directions[slot] != taken:
            self.directions[slot] = taken
            self.runs[slot] = 1
        elif run < self._max_run:
            self.runs[slot] = run + 1

    # -- batch interface -----------------------------------------------------------

    def simulate_detailed(self, trace: BranchTrace) -> DetailedSimulation:
        """Counter-id layout: the filter slots first, then the
        sub-predictor's counters offset by the filter size.  A filtered
        access attributes its prediction to the filter entry that
        answered; an unfiltered one to the sub-predictor counter
        (via the sub's ``_counter_id`` attribution hook)."""
        sub = self.sub_predictor
        try:
            sub_size = sub._num_detail_counters()
            sub_cid = sub._counter_id
        except AttributeError:
            raise NotImplementedError(
                f"bias-filter sub-predictor {sub.name} does not expose "
                "counter attribution"
            ) from None
        n = len(trace)
        predictions = np.empty(n, dtype=bool)
        counter_ids = np.empty(n, dtype=np.int64)
        filter_size = 1 << self.filter_index_bits
        pc_mask = self._mask
        max_run = self._max_run
        directions, runs = self.directions, self.runs

        for i, (pc, taken) in enumerate(
            zip(trace.pcs.tolist(), trace.outcomes.tolist())
        ):
            slot = pc & pc_mask
            if runs[slot] >= max_run:
                counter_ids[i] = slot
                predictions[i] = directions[slot]
            else:
                counter_ids[i] = filter_size + sub_cid(pc)
                predictions[i] = sub.predict(pc)
            self.update(pc, taken)

        result = SimulationResult(
            predictor_name=self.name,
            trace_name=trace.name,
            predictions=predictions,
            outcomes=trace.outcomes,
        )
        return DetailedSimulation(
            result=result,
            counter_ids=counter_ids,
            num_counters=filter_size + sub_size,
            pcs=trace.pcs,
        )
