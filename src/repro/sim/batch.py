"""Batched multi-configuration gshare simulation kernel.

The paper's ``gshare.best`` search (Section 3.1) simulates every history
length ``0..index_bits`` at each predictor size — a dozen-plus full
trace passes per (size, benchmark) cell through the scalar per-branch
loop.  This module collapses the whole family into vectorized passes
with no per-branch Python iteration.

Lane model
----------
Lane ``k`` is a ``(index_bits_k, history_bits_k)`` gshare sharing one
trace with every other lane.  Its PHT occupies its own slab of a
conceptual flat counter-state space, so every counter in the batch is
globally unique and lanes never interact.  Because histories depend only
on resolved outcomes — never on predictions — each lane's whole index
stream is precomputable up front (history streams are shared between
lanes with equal history length), leaving only the per-counter
saturating automaton as sequential work.

Counter-major evaluation
------------------------
The kernel transposes each lane from time-major to counter-major:

1. accesses are stably grouped by counter id with an ``O(n)`` counting
   sort (scipy's C ``coo_tocsr`` kernel when available, numpy's radix
   ``argsort`` otherwise), preserving time order inside each group;
2. consecutive same-outcome accesses of a counter collapse into *runs*.
   A run of ``r`` takens acts on the 2-bit counter as the saturating
   map ``s -> min(3, s + r)`` — and every composition of such maps
   stays of the closed form ``s -> min(hi, max(lo, s + c))``, so a run
   is three small integers;
3. a segmented Hillis–Steele scan composes run maps in ``O(log L)``
   doubling steps (``L`` = most runs on any one counter), yielding each
   run's start state;
4. inside a run the automaton moves monotonically, so both the
   per-access predictions and the run's misprediction *count* have
   closed forms — rate queries never materialize per-access state.

Results are bit-for-bit identical to the scalar step interface
(:func:`repro.sim.engine.run_steps`); the equivalence suite asserts it
lane by lane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.counters import WEAKLY_TAKEN
from repro.core.grouping import stable_group_order
from repro.core.history import global_history_stream
from repro.core.indexing import gshare_index_stream
from repro.core.registry import parse_spec
from repro.traces.record import BranchTrace

__all__ = [
    "GShareLane",
    "lane_for_spec",
    "gshare_lane_predictions",
    "gshare_lane_detailed",
    "gshare_lane_rates",
    "gshare_family_rates",
    "counter_scan",
]

@dataclass(frozen=True)
class GShareLane:
    """One gshare configuration inside a batch."""

    index_bits: int
    history_bits: int

    def __post_init__(self) -> None:
        if self.index_bits < 0:
            raise ValueError(f"index_bits must be >= 0, got {self.index_bits}")
        if not 0 <= self.history_bits <= self.index_bits:
            raise ValueError(
                f"history_bits ({self.history_bits}) must be in [0, {self.index_bits}]"
            )

    @property
    def spec(self) -> str:
        """The registry spec string naming this configuration."""
        return f"gshare:index={self.index_bits},hist={self.history_bits}"

    @property
    def table_size(self) -> int:
        return 1 << self.index_bits


def lane_for_spec(spec: str) -> Optional[GShareLane]:
    """Parse a spec string into a lane, or ``None`` if it is not a plain
    gshare configuration the batch kernel can simulate."""
    try:
        scheme, kwargs = parse_spec(spec)
    except ValueError:
        return None
    if scheme != "gshare" or not set(kwargs) <= {"index", "hist"} or "index" not in kwargs:
        return None
    try:
        index_bits = int(kwargs["index"])
        history_bits = int(kwargs.get("hist", index_bits))
    except ValueError:
        return None
    if index_bits < 0 or not 0 <= history_bits <= index_bits:
        return None
    return GShareLane(index_bits=index_bits, history_bits=history_bits)


#: Stable counting-sort grouping, shared with the Section-4 analysis
#: (see :mod:`repro.core.grouping`).
_stable_group_order = stable_group_order


def _lane_runs(
    keys: np.ndarray, outcomes: np.ndarray, num_counters: int, init: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Counter-major run decomposition of one lane's access stream.

    Returns ``(order, run_first, run_len, run_out, run_s0)``:
    the grouping permutation, each run's first position in grouped
    order, its length, its (constant) outcome, and — the sequential part
    of the problem, resolved by segmented map composition — the counter
    state at the run's first access.
    """
    n = len(keys)
    order = _stable_group_order(keys, num_counters)
    grouped_keys = keys[order]
    grouped_outs = outcomes[order]

    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    np.not_equal(grouped_keys[1:], grouped_keys[:-1], out=seg_start[1:])
    run_start = seg_start.copy()
    run_start[1:] |= grouped_outs[1:] != grouped_outs[:-1]

    run_first = np.flatnonzero(run_start)
    num_runs = len(run_first)
    run_len = np.empty(num_runs, dtype=np.int32)
    run_len[:-1] = np.diff(run_first)
    run_len[-1] = n - run_first[-1]
    run_out = grouped_outs[run_first]

    # Elementary run maps s -> min(hi, max(lo, s + c)): a taken run of
    # length r is (c=r, lo=min(r,3), hi=3), a not-taken run is
    # (c=-r, lo=0, hi=max(3-r,0)).
    shift = np.where(run_out, run_len, -run_len).astype(np.int32)
    lo = np.where(run_out, np.minimum(run_len, 3), 0).astype(np.int32)
    hi = np.where(run_out, 3, np.maximum(3 - run_len, 0)).astype(np.int32)

    # Position of each run within its counter's segment.
    seg_start_runs = seg_start[run_first]
    seg_first_run = np.flatnonzero(seg_start_runs)
    seg_id = np.cumsum(seg_start_runs, dtype=np.int64) - 1
    pos = np.arange(num_runs, dtype=np.int64) - seg_first_run[seg_id]

    _compose_segmented(shift, lo, hi, pos)

    # State before each run's first access: init at segment heads,
    # otherwise the previous run's inclusive composition applied to init.
    run_s0 = np.full(num_runs, init, dtype=np.int32)
    interior = np.flatnonzero(~seg_start_runs)
    prev = interior - 1
    run_s0[interior] = np.minimum(
        hi[prev], np.maximum(lo[prev], init + shift[prev])
    )
    return order, run_first, run_len, run_out, run_s0


def _compose_segmented(
    shift: np.ndarray, lo: np.ndarray, hi: np.ndarray, pos: np.ndarray
) -> None:
    """Segmented inclusive prefix composition (Hillis–Steele doubling).

    ``(shift, lo, hi)`` hold one saturating map
    ``s -> min(hi, max(lo, s + shift))`` per run and are updated in place
    to the composition of every map from the segment head through that
    run; ``pos`` is each run's offset within its segment.
    """
    if len(pos) == 0:
        return
    longest = int(pos.max()) + 1
    dist = 1
    while dist < longest:
        rows = np.flatnonzero(pos >= dist)
        prev = rows - dist
        shift_f, lo_f, hi_f = shift[prev], lo[prev], hi[prev]
        shift_g, lo_g, hi_g = shift[rows], lo[rows], hi[rows]
        lo[rows] = np.minimum(hi_g, np.maximum(lo_g, lo_f + shift_g))
        hi[rows] = np.minimum(hi_g, np.maximum(lo_g, hi_f + shift_g))
        shift[rows] = shift_f + shift_g
        dist <<= 1


def counter_scan(
    keys: np.ndarray,
    deltas: np.ndarray,
    init_states: np.ndarray,
    num_counters: int,
    max_state: int = 3,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generalized counter-major scan over saturating counters.

    Extends the gshare run machinery in two directions needed by the
    feedback-coupled kernels (:mod:`repro.sim.batch_bimode`): each
    counter starts from its *own* initial state (``init_states``, e.g. a
    live table snapshot rather than a power-on constant), and each
    access carries a delta in ``{-1, 0, +1}`` — ``0`` meaning the access
    reads the counter without training it (a skipped partial update).

    Parameters
    ----------
    keys:
        Per-access counter ids, time order, in ``[0, num_counters)``.
    deltas:
        Per-access counter movement, same length as ``keys``.
    init_states:
        ``(num_counters,)`` counter states before the first access.
    num_counters:
        Size of the counter space.
    max_state:
        Saturation ceiling (``3`` for the classic 2-bit counter;
        ``(1 << bits) - 1`` for the multi-bit bimodal ablations).

    Returns
    -------
    ``(pre_states, end_states)`` — the state each access *observes*
    (before its own delta, in time order) and the final state of every
    counter after all accesses.
    """
    keys = np.asarray(keys)
    deltas = np.asarray(deltas)
    init_states = np.asarray(init_states, dtype=np.int32)
    n = len(keys)
    end_states = init_states.copy()
    if n == 0:
        return np.empty(0, dtype=np.int32), end_states
    keys32 = keys.astype(np.int32, copy=False)

    order = _stable_group_order(keys32, num_counters)
    grouped_keys = keys32[order]
    grouped_deltas = deltas[order].astype(np.int32, copy=False)

    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    np.not_equal(grouped_keys[1:], grouped_keys[:-1], out=seg_start[1:])
    run_start = seg_start.copy()
    run_start[1:] |= grouped_deltas[1:] != grouped_deltas[:-1]

    run_first = np.flatnonzero(run_start)
    num_runs = len(run_first)
    run_len = np.empty(num_runs, dtype=np.int32)
    run_len[:-1] = np.diff(run_first)
    run_len[-1] = n - run_first[-1]
    run_delta = grouped_deltas[run_first]

    # Elementary maps: a +1 run of length r is (c=r, lo=min(r,M), hi=M),
    # a -1 run is (c=-r, lo=0, hi=max(M-r,0)), a 0 run is the identity.
    shift = run_delta * run_len
    lo = np.where(run_delta > 0, np.minimum(run_len, max_state), 0).astype(np.int32)
    hi = np.where(
        run_delta < 0, np.maximum(max_state - run_len, 0), max_state
    ).astype(np.int32)

    seg_start_runs = seg_start[run_first]
    seg_first_run = np.flatnonzero(seg_start_runs)
    seg_id_runs = np.cumsum(seg_start_runs, dtype=np.int64) - 1
    pos = np.arange(num_runs, dtype=np.int64) - seg_first_run[seg_id_runs]

    _compose_segmented(shift, lo, hi, pos)

    # Per-run start state: the counter's own init at segment heads,
    # otherwise the previous run's inclusive composition applied to it.
    seg_init = init_states[grouped_keys[run_first]]
    run_s0 = seg_init.copy()
    interior = np.flatnonzero(~seg_start_runs)
    prev = interior - 1
    run_s0[interior] = np.minimum(
        hi[prev], np.maximum(lo[prev], seg_init[interior] + shift[prev])
    )

    # Within a run the automaton moves monotonically (or not at all).
    run_id = np.cumsum(_starts_mask(n, run_first), dtype=np.int64) - 1
    offset_in_run = np.arange(n, dtype=np.int64) - run_first[run_id]
    state_grouped = np.clip(
        run_s0[run_id] + run_delta[run_id] * offset_in_run, 0, max_state
    ).astype(np.int32)
    pre_states = np.empty(n, dtype=np.int32)
    pre_states[order] = state_grouped

    # Final state of every touched counter: the segment's last run's
    # inclusive composition applied to the segment's initial state.
    seg_last_run = np.append(seg_first_run[1:], num_runs) - 1
    touched = grouped_keys[run_first[seg_first_run]]
    end_states[touched] = np.minimum(
        hi[seg_last_run],
        np.maximum(lo[seg_last_run], init_states[touched] + shift[seg_last_run]),
    )
    return pre_states, end_states


def _lane_keys(
    lane: GShareLane,
    trace: BranchTrace,
    histories_cache: Dict[int, np.ndarray],
) -> np.ndarray:
    if lane.history_bits not in histories_cache:
        histories_cache[lane.history_bits] = global_history_stream(
            trace.outcomes, lane.history_bits
        )
    keys = gshare_index_stream(
        trace.pcs,
        histories_cache[lane.history_bits],
        lane.index_bits,
        lane.history_bits,
    )
    return keys.astype(np.int32, copy=False)


def gshare_lane_predictions(
    lanes: Sequence[GShareLane], trace: BranchTrace, init: int = WEAKLY_TAKEN
) -> np.ndarray:
    """Per-branch predictions of every lane over one trace.

    Returns a ``(len(lanes), len(trace))`` boolean array whose row ``k``
    is bit-for-bit what ``GSharePredictor(lanes[k].index_bits,
    lanes[k].history_bits)`` would predict from power-on state.
    """
    lanes = list(lanes)
    n = len(trace)
    predictions = np.empty((len(lanes), n), dtype=bool)
    if not lanes or n == 0:
        return predictions
    outcomes = np.ascontiguousarray(trace.outcomes)
    histories_cache: Dict[int, np.ndarray] = {}
    for k, lane in enumerate(lanes):
        keys = _lane_keys(lane, trace, histories_cache)
        order, run_first, run_len, run_out, run_s0 = _lane_runs(
            keys, outcomes, lane.table_size, init
        )
        # Within a run the automaton is monotone: the j-th access of a
        # taken run sees min(3, s0 + j), of a not-taken run max(0, s0 - j).
        run_id = np.cumsum(_starts_mask(n, run_first), dtype=np.int64) - 1
        offset_in_run = np.arange(n, dtype=np.int64) - run_first[run_id]
        s0 = run_s0[run_id]
        state = np.where(
            run_out[run_id],
            np.minimum(3, s0 + offset_in_run),
            np.maximum(0, s0 - offset_in_run),
        )
        predictions[k, order] = state >= 2
    return predictions


def _starts_mask(n: int, starts: np.ndarray) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    mask[starts] = True
    return mask


def gshare_lane_detailed(
    lane: GShareLane, trace: BranchTrace, init: int = WEAKLY_TAKEN
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-access ``(predictions, counter_ids)`` of one lane (Section 4).

    The counting-sort kernel already groups accesses per counter, so the
    attribution the detailed analysis needs is the very index stream the
    kernel sorts by — emitting it costs one extra array view.  When the
    compiled step driver (:mod:`repro.sim._cstep`) is available the
    per-branch automaton runs there instead, skipping the counter-major
    transpose entirely.  Both paths are bit-for-bit what
    ``GSharePredictor.simulate_detailed`` records from power-on state.
    """
    n = len(trace)
    if n == 0:
        return np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
    outcomes = np.ascontiguousarray(trace.outcomes)
    histories_cache: Dict[int, np.ndarray] = {}
    keys = _lane_keys(lane, trace, histories_cache)

    from repro.sim import _cstep

    if _cstep.available():
        table = np.full(lane.table_size, init, dtype=np.int8)
        preds = _cstep.gshare_detailed(
            np.ascontiguousarray(keys), outcomes.view(np.uint8), table
        )
        return preds.view(bool), keys.astype(np.int64)

    order, run_first, run_len, run_out, run_s0 = _lane_runs(
        keys, outcomes, lane.table_size, init
    )
    run_id = np.cumsum(_starts_mask(n, run_first), dtype=np.int64) - 1
    offset_in_run = np.arange(n, dtype=np.int64) - run_first[run_id]
    s0 = run_s0[run_id]
    state = np.where(
        run_out[run_id],
        np.minimum(3, s0 + offset_in_run),
        np.maximum(0, s0 - offset_in_run),
    )
    predictions = np.empty(n, dtype=bool)
    predictions[order] = state >= 2
    return predictions, keys.astype(np.int64)


def gshare_lane_rates(
    lanes: Sequence[GShareLane], trace: BranchTrace, init: int = WEAKLY_TAKEN
) -> List[float]:
    """Misprediction rate of every lane over one trace.

    Rates are mispredictions / branches with the same integer counts as
    :attr:`SimulationResult.misprediction_rate`, so they agree
    byte-for-byte with the scalar engine's.  Unlike
    :func:`gshare_lane_predictions` this never materializes per-access
    state: a run's mispredictions have a closed form in its start state.
    """
    lanes = list(lanes)
    n = len(trace)
    if n == 0:
        return [0.0] * len(lanes)
    from repro import health

    health.engine_used("gshare-kernel", "numpy", cells=len(lanes))
    outcomes = np.ascontiguousarray(trace.outcomes)
    histories_cache: Dict[int, np.ndarray] = {}
    rates: List[float] = []
    for lane in lanes:
        keys = _lane_keys(lane, trace, histories_cache)
        _, _, run_len, run_out, run_s0 = _lane_runs(
            keys, outcomes, lane.table_size, init
        )
        # Taken run: accesses j with min(3, s0+j) < 2 mispredict, i.e.
        # clip(2-s0, 0, r) of them; not-taken run: clip(s0-1, 0, r).
        missed = np.where(
            run_out,
            np.clip(2 - run_s0, 0, run_len),
            np.clip(run_s0 - 1, 0, run_len),
        )
        rates.append(int(missed.sum()) / n)
    return rates


#: Upper bound on stacked (lane, access) pairs handled per chunk by the
#: numpy fused fallback; bounds the working set of the counting sort.
_STACK_BUDGET = 8_000_000


def _stacked_family_rates(
    lanes: Sequence[GShareLane], trace: BranchTrace, init: int
) -> List[float]:
    """Numpy fallback for the fused family pass: lanes are stacked into
    one global counter space (each lane's PHT at its own base offset)
    and the whole stack goes through a single counter-major run
    decomposition; per-lane misprediction counts come back out of the
    run reduction by binning runs on their lane's counter range.  Lane
    chunks are sized so the stacked access stream stays bounded.
    """
    n = len(trace)
    outcomes = np.ascontiguousarray(trace.outcomes)
    histories_cache: Dict[int, np.ndarray] = {}
    rates: List[float] = []
    per_chunk = max(1, _STACK_BUDGET // max(n, 1))
    for start in range(0, len(lanes), per_chunk):
        chunk = list(lanes[start : start + per_chunk])
        bases = np.zeros(len(chunk), dtype=np.int64)
        parts: List[np.ndarray] = []
        total = 0
        for j, lane in enumerate(chunk):
            bases[j] = total
            parts.append(_lane_keys(lane, trace, histories_cache) + np.int32(total))
            total += lane.table_size
        stacked_keys = np.concatenate(parts)
        stacked_outs = np.tile(outcomes, len(chunk))
        order, run_first, run_len, run_out, run_s0 = _lane_runs(
            stacked_keys, stacked_outs, total, init
        )
        missed = np.where(
            run_out,
            np.clip(2 - run_s0, 0, run_len),
            np.clip(run_s0 - 1, 0, run_len),
        )
        # Lanes occupy disjoint contiguous counter ranges, so a run's
        # counter id places it in exactly one lane.
        run_lane = np.searchsorted(bases, stacked_keys[order[run_first]], "right") - 1
        per_lane = np.bincount(run_lane, weights=missed, minlength=len(chunk))
        rates.extend(int(m) / n for m in per_lane)
    return rates


def gshare_family_rates(
    lanes: Sequence[GShareLane], trace: BranchTrace, init: int = WEAKLY_TAKEN
) -> List[float]:
    """Misprediction rate of every lane via the fused single-pass driver.

    The whole lane family advances in ONE pass over the trace: the
    compiled driver (:func:`repro.sim._cstep.gshare_fused`) keeps every
    lane's PHT in a shared arena and reduces to per-lane misprediction
    counts in-loop, so neither index streams nor per-access state are
    ever materialized.  Without a compiler the family falls back to the
    stacked counter-major numpy pass (health-reported).  Rates are
    bit-identical to :func:`gshare_lane_rates` and the scalar engine.
    """
    lanes = list(lanes)
    n = len(trace)
    if not lanes:
        return []
    if n == 0:
        return [0.0] * len(lanes)
    from repro import health
    from repro.sim import _cstep

    if _cstep.available():
        health.engine_used("gshare-fused", "c", cells=len(lanes))
        sizes = np.array([lane.table_size for lane in lanes], dtype=np.int64)
        base = np.zeros(len(lanes), dtype=np.int64)
        base[1:] = np.cumsum(sizes)[:-1]
        imask = np.array([lane.table_size - 1 for lane in lanes], dtype=np.int64)
        hmask = np.array(
            [(1 << lane.history_bits) - 1 for lane in lanes], dtype=np.int64
        )
        tables = np.full(int(sizes.sum()), init, dtype=np.int8)
        miss = _cstep.gshare_fused(
            np.ascontiguousarray(trace.pcs, dtype=np.int64),
            np.ascontiguousarray(trace.outcomes).view(np.uint8),
            imask,
            hmask,
            base,
            tables,
        )
        return [int(m) / n for m in miss]
    health.engine_used(
        "gshare-fused",
        "numpy",
        expected="c",
        cells=len(lanes),
        reason=_cstep.unavailable_reason() or "",
    )
    return _stacked_family_rates(lanes, trace, init)
