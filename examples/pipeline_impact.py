#!/usr/bin/env python
"""Pipeline impact — what a predictor is worth in cycles.

The paper's opening sentence is about pipeline bubbles; this example
closes the loop by pushing prediction results through the front-end
model of :class:`repro.sim.fetch.FetchEngine` and reporting IPC and the
speedup a bi-mode predictor buys over gshare on two machine shapes:

* a short-pipeline machine (penalty 4, the era's scalar cores);
* a Pentium-Pro-class machine (4-wide, penalty 11) where prediction
  quality dominates.

Run with::

    python examples/pipeline_impact.py [benchmark]
"""

from __future__ import annotations

import sys

from repro import load_benchmark, make_predictor, run
from repro.analysis.report import ascii_table
from repro.sim.fetch import FetchEngine

MACHINES = [
    ("short pipeline", FetchEngine(fetch_width=2, misprediction_penalty=4)),
    ("Pentium-Pro class", FetchEngine(fetch_width=4, misprediction_penalty=11)),
]
PREDICTORS = [
    "bimodal:index=12",
    "gshare:index=12,hist=12",
    "bimode:dir=11,hist=11,choice=11",
]


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    trace = load_benchmark(benchmark, length=200_000)
    print(f"benchmark: {trace.name} ({len(trace)} branches)\n")

    results = {spec: run(make_predictor(spec), trace) for spec in PREDICTORS}

    for machine_name, engine in MACHINES:
        rows = []
        baseline = results[PREDICTORS[0]]
        for spec in PREDICTORS:
            result = results[spec]
            stats = engine.run(result)
            rows.append(
                [
                    spec,
                    f"{100 * result.misprediction_rate:.2f}%",
                    f"{stats.ipc:.2f}",
                    f"{100 * stats.bubble_fraction:.1f}%",
                    f"{engine.speedup(baseline, result):.3f}x",
                ]
            )
        print(
            ascii_table(
                ["predictor", "mispredict", "IPC", "bubble cycles", "speedup vs bimodal"],
                rows,
                title=f"{machine_name} (width {engine.fetch_width}, "
                f"penalty {engine.misprediction_penalty})",
            )
        )
        print(f"ideal IPC: {engine.ideal_ipc():.1f}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
