"""Aliasing decomposition — harmless vs destructive interference.

Not a numbered paper artifact, but the measurement behind the paper's
core sentence: bi-mode "separates the destructive aliases while keeping
the harmless aliases together".  For gcc at the Figure-5/6 geometry we
report, per scheme:

* the fraction of accesses landing on *aliased* counters (shared by
  more than one static branch) — bi-mode does NOT reduce this (its
  banks are half-size, so raw sharing goes up);
* the fraction landing on *destructive* counters (material ST+SNT
  collisions) — which bias routing must reduce at matched geometry;
* the capacity/conflict split of stream sharing
  ([MichaudSeznecUhlig97]'s framing).
"""

from __future__ import annotations

import pytest

from benchmarks.common import detailed_summaries, emit_table, load_bench_trace

SCHEMES = [
    ("gshare 2^8", "gshare:index=8,hist=8"),
    ("bi-mode 2x2^8", "bimode:dir=8,hist=8,choice=8"),
    ("gshare 2^12", "gshare:index=12,hist=12"),
    ("bi-mode 2x2^12", "bimode:dir=12,hist=12,choice=12"),
]


@pytest.mark.benchmark(group="aliasing")
def test_aliasing_decomposition(benchmark):
    trace = load_bench_trace("gcc")

    def compute():
        summaries = detailed_summaries(
            [spec for _, spec in SCHEMES], {"gcc": trace}, stem="aliasing_gcc"
        )
        return {
            label: (summaries[spec]["gcc"]["aliasing"], summaries[spec]["gcc"]["sharing"])
            for label, spec in SCHEMES
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for label, (stats, decomposition) in results.items():
        rows.append(
            [
                label,
                stats["counters_used"],
                f"{100 * stats['aliased_access_fraction']:.1f}%",
                f"{100 * stats['destructive_access_fraction']:.1f}%",
                f"{100 * stats['harmless_access_fraction']:.1f}%",
                f"{100 * decomposition['capacity_share']:.1f}%",
                f"{100 * decomposition['conflict_share']:.1f}%",
            ]
        )
    emit_table(
        "aliasing_decomposition",
        "Aliasing decomposition on gcc (access fractions)",
        ["scheme", "counters", "aliased", "destructive", "harmless", "capacity", "conflict"],
        rows,
    )

    # matched geometry: bias routing reduces destructive share at both sizes
    for n in ("2^8", "2^12"):
        g = results[f"gshare {n}"][0]
        b = results[f"bi-mode 2x{n}"][0]
        assert b["destructive_access_fraction"] < g["destructive_access_fraction"], n

    # bigger tables reduce destructive aliasing for both schemes
    assert (
        results["gshare 2^12"][0]["destructive_access_fraction"]
        < results["gshare 2^8"][0]["destructive_access_fraction"]
    )
