"""Thin client library for the sweep service.

:class:`ServiceClient` wraps the JSON-line protocol with the retry
discipline a robust client needs and nothing else:

* **backpressure** — a ``retryable`` rejection (queue full, daemon
  draining) is retried with exponential backoff up to
  ``submit_retries`` times before surfacing :class:`ServiceBusy`;
* **daemon restarts** — :meth:`wait` reconnects and re-subscribes when
  the connection drops mid-stream, so a client survives a ``kill -9``
  of the daemon: the restarted daemon resumes the job from its journal
  and the client picks the stream back up by job id;
* **streaming** — progress/health events invoke an optional
  ``on_event`` callback as they arrive; the terminal ``done`` event's
  job payload (manifest dict, results included) is the return value.

Every method opens one connection per request; the client object is
cheap and stateless apart from its address and identity.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable, List, Optional, Sequence, Union

from repro.service.protocol import Address, connect, read_message, write_message

__all__ = ["ServiceBusy", "ServiceError", "ServiceClient"]


class ServiceError(RuntimeError):
    """The daemon rejected a request (not retryable)."""


class ServiceBusy(ServiceError):
    """Backpressure: the daemon kept rejecting after every retry."""


Benchmark = Union[str, dict]


class ServiceClient:
    """One caller's handle on the sweep daemon."""

    def __init__(
        self,
        address: Optional[Address] = None,
        client_id: Optional[str] = None,
        connect_timeout: float = 10.0,
        submit_retries: int = 5,
        backoff: float = 0.2,
    ):
        self.address = address
        self.client_id = client_id or f"client-{os.getpid()}"
        self.connect_timeout = connect_timeout
        self.submit_retries = submit_retries
        self.backoff = backoff

    # -- plumbing -------------------------------------------------------------

    def _request(self, payload: dict) -> dict:
        """One request, one response, connection closed."""
        sock = connect(self.address, timeout=self.connect_timeout)
        try:
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            write_message(wfile, payload)
            response = read_message(rfile)
        finally:
            sock.close()
        if response is None:
            raise ConnectionError("daemon closed the connection without replying")
        return response

    @staticmethod
    def _check(response: dict) -> dict:
        if not response.get("ok"):
            error = str(response.get("error", "unknown service error"))
            if response.get("retryable"):
                raise ServiceBusy(error)
            raise ServiceError(error)
        return response

    # -- requests -------------------------------------------------------------

    def ping(self) -> dict:
        return self._check(self._request({"op": "ping"}))

    def status(self, job_id: Optional[str] = None) -> List[dict]:
        payload = {"op": "status"}
        if job_id is not None:
            payload["job_id"] = job_id
        return self._check(self._request(payload))["jobs"]

    def result(self, job_id: str) -> Optional[dict]:
        """A finished job's manifest (with results), or ``None``."""
        response = self._request({"op": "result", "job_id": job_id})
        if not response.get("ok"):
            return None
        return response["job"]

    def drain(self) -> None:
        """Ask the daemon to drain and exit gracefully."""
        self._check(self._request({"op": "drain"}))

    def submit(
        self,
        specs: Sequence[str],
        benchmarks: Iterable[Benchmark],
        kind: str = "rates",
        priority: int = 0,
        seed: int = 0,
        timeout: Optional[float] = None,
    ) -> str:
        """Submit one job; returns its id.  Retries on backpressure."""
        payload = {
            "op": "submit",
            "client": self.client_id,
            "kind": kind,
            "specs": list(specs),
            "benchmarks": [
                b if isinstance(b, dict) else {"name": b} for b in benchmarks
            ],
            "priority": int(priority),
            "seed": int(seed),
        }
        if timeout is not None:
            payload["timeout"] = float(timeout)
        last_busy: Optional[ServiceBusy] = None
        for attempt in range(self.submit_retries + 1):
            try:
                return self._check(self._request(payload))["job_id"]
            except ServiceBusy as exc:
                last_busy = exc
                if attempt < self.submit_retries:
                    time.sleep(self.backoff * (2**attempt))
        raise last_busy  # type: ignore[misc]

    def wait(
        self,
        job_id: str,
        on_event: Optional[Callable[[dict], None]] = None,
        timeout: Optional[float] = None,
        reconnect_backoff: float = 0.5,
    ) -> dict:
        """Stream a job until it finishes; returns the final manifest.

        Survives daemon restarts: a dropped connection (or a daemon that
        is not up yet) is retried until ``timeout``.  Known terminal
        states short-circuit through the ``result`` op.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                job = self._wait_once(job_id, on_event)
            except (ConnectionError, OSError):
                job = None
            if job is not None:
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"gave up waiting for job {job_id}")
            time.sleep(reconnect_backoff)

    def _wait_once(self, job_id: str, on_event) -> Optional[dict]:
        """One streaming attempt; ``None`` means reconnect and retry."""
        sock = connect(self.address, timeout=self.connect_timeout)
        try:
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            write_message(wfile, {"op": "wait", "job_id": job_id})
            ack = read_message(rfile)
            if ack is None or not ack.get("ok"):
                return None
            # Streamed events can be sparse; heartbeats arrive about
            # every second, so a generous read timeout detects death.
            sock.settimeout(30.0)
            while True:
                event = read_message(rfile)
                if event is None:
                    return None
                name = event.get("event")
                if name == "error":
                    raise ServiceError(str(event.get("error", "unknown job")))
                if name == "done":
                    if on_event is not None:
                        on_event(event)
                    return event["job"]
                if name != "heartbeat" and on_event is not None:
                    on_event(event)
        finally:
            sock.close()

    def submit_and_wait(
        self,
        specs: Sequence[str],
        benchmarks: Iterable[Benchmark],
        on_event: Optional[Callable[[dict], None]] = None,
        timeout: Optional[float] = None,
        **submit_kwargs,
    ) -> dict:
        """Convenience: submit then wait; returns the final manifest."""
        job_id = self.submit(specs, benchmarks, **submit_kwargs)
        return self.wait(job_id, on_event=on_event, timeout=timeout)
