"""Golden regression fixtures: canonical traces, frozen rates.

``tests/golden/rates.json`` pins the exact misprediction rate of a
representative spec per predictor scheme on small canonical traces
(rebuilt deterministically from their recorded recipes).  Rates are
exact rational numbers (miss count / length) computed by deterministic
code, so comparison is **equality**, not approximation: any drift —
however small — is a semantic change to a predictor and must be either
fixed or consciously re-frozen.

On mismatch the failure message lists every drifted cell as
``spec | trace: expected ... got ...`` so the blast radius is readable
at a glance.

Regenerate (after an *intentional* semantic change) with::

    PYTHONPATH=src:. python tests/test_golden.py --regen

and eyeball the JSON diff before committing it.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path

from repro.core.registry import make_predictor, parse_spec
from repro.sim.engine import run

from tests.conftest import PORTED_GRID, make_toy_trace

GOLDEN_PATH = Path(__file__).parent / "golden" / "rates.json"

#: At least one spec per registered scheme under regression pinning,
#: plus the kernel registry's ported grid (2-3 sizes per ported
#: scheme), so every lane kernel answers to a frozen exact rational.
GOLDEN_SPECS = list(
    dict.fromkeys(
        [
            "bimode:dir=7,hist=5,choice=6",
            "bimode:dir=6,hist=6,choice=5,full_update=1,choice_hist=1",
            "gshare:index=8,hist=6",
            "gshare:index=6,hist=3",
            "bimodal:index=7",
            "gag:hist=7",
            "pag:hist=5,bht=5",
            "gselect:hist=4,addr=4",
            "perceptron:index=5,hist=8",
            "agree:index=8,hist=6,bias=8",
            "gskew:bank=6,hist=6",
            "yags:choice=7,cache=5,hist=5,tag=5",
            "tournament:index=7,meta=7",
            "trimode:dir=6,hist=4,choice=5",
            "biasfilter:table=6,run=2,sub_index=7,sub_hist=5",
            "always-taken",
            "always-not-taken",
            "btfnt",
            *PORTED_GRID,
        ]
    )
)

#: Canonical trace recipes — regenerated bit-identically by
#: :func:`tests.conftest.make_toy_trace` from these parameters.
GOLDEN_TRACES = {
    "toy-mixed": {"length": 2000, "seed": 7, "num_branches": 24},
    "toy-aliasing": {"length": 1500, "seed": 13, "num_branches": 96},
    "toy-small": {"length": 600, "seed": 3, "num_branches": 8},
}


def _build_traces():
    return {name: make_toy_trace(**recipe) for name, recipe in GOLDEN_TRACES.items()}


def _compute_rates() -> dict:
    traces = _build_traces()
    return {
        spec: {
            name: str(
                Fraction(
                    run(make_predictor(spec), trace).num_mispredictions, len(trace)
                )
            )
            for name, trace in traces.items()
        }
        for spec in GOLDEN_SPECS
    }


def test_golden_covers_every_registered_scheme():
    from repro.core.registry import available_schemes

    covered = {parse_spec(spec)[0] for spec in GOLDEN_SPECS}
    assert covered == set(available_schemes())


def test_fixture_recipes_match_checked_in_file():
    data = json.loads(GOLDEN_PATH.read_text())
    assert data["traces"] == GOLDEN_TRACES, (
        "golden trace recipes changed; regenerate with "
        "`PYTHONPATH=src:. python tests/test_golden.py --regen`"
    )
    assert sorted(data["rates"]) == sorted(GOLDEN_SPECS), (
        "golden spec list changed; regenerate the fixtures"
    )


def test_rates_match_golden_fixtures():
    expected = json.loads(GOLDEN_PATH.read_text())["rates"]
    got = _compute_rates()
    drifted = []
    for spec in GOLDEN_SPECS:
        for name in GOLDEN_TRACES:
            want = expected.get(spec, {}).get(name)
            have = got[spec][name]
            if want != have:
                drifted.append(f"  {spec} | {name}: expected {want}  got {have}")
    assert not drifted, (
        "misprediction rates drifted from tests/golden/rates.json "
        "(intentional? regenerate with "
        "`PYTHONPATH=src:. python tests/test_golden.py --regen`):\n"
        + "\n".join(drifted)
    )


def test_batch_kernels_reproduce_golden_fixtures():
    """The registry's batched path must land on the *same rationals*
    as the scalar engine that froze them: for every golden cell, the
    planner-dispatched rate equals the fixture's exact miss/length."""
    from repro.sim.fused import family_rates, plan_families

    expected = json.loads(GOLDEN_PATH.read_text())["rates"]
    drifted = []
    for name, trace in _build_traces().items():
        got = {}
        for family in plan_families(GOLDEN_SPECS):
            got.update(family_rates(family, trace))
        for spec in GOLDEN_SPECS:
            frac = Fraction(expected[spec][name])
            miss = frac * len(trace)
            assert miss.denominator == 1, (spec, name)
            if got[spec] != int(miss) / len(trace):
                drifted.append(
                    f"  {spec} | {name}: expected {frac}  got {got[spec]}"
                )
    assert not drifted, (
        "batched kernel rates diverge from the golden fixtures:\n"
        + "\n".join(drifted)
    )


def _regen() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traces": GOLDEN_TRACES, "rates": _compute_rates()}
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(GOLDEN_SPECS)} specs x {len(GOLDEN_TRACES)} traces)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        sys.exit("usage: PYTHONPATH=src:. python tests/test_golden.py --regen")
