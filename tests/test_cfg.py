"""Unit tests for the synthetic program model."""

from random import Random

import numpy as np
import pytest

from repro.workloads.cfg import BranchSite, Program, Region, zipf_weights
from repro.workloads.components import (
    BiasedBehavior,
    LoopBehavior,
    PatternBehavior,
)


def biased_site(addr, p=1.0):
    return BranchSite(address=addr, behavior=BiasedBehavior(p))


class TestZipfWeights:
    def test_normalized(self):
        assert zipf_weights(10).sum() == pytest.approx(1.0)

    def test_decreasing(self):
        w = zipf_weights(5, skew=1.0)
        assert all(w[i] > w[i + 1] for i in range(4))

    def test_zero_skew_is_uniform(self):
        w = zipf_weights(4, skew=0.0)
        assert np.allclose(w, 0.25)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, skew=-1)


class TestRegion:
    def test_requires_sites(self):
        with pytest.raises(ValueError):
            Region(body=[])

    def test_loop_site_must_be_loop_behavior(self):
        with pytest.raises(TypeError):
            Region(body=[biased_site(0)], loop=biased_site(2))

    def test_straight_line_emits_body_once(self):
        region = Region(body=[biased_site(0), biased_site(2)])
        emitted = []
        region.execute(lambda pc, taken: emitted.append(pc), [0], Random(0))
        assert emitted == [0, 2]

    def test_loop_repeats_body(self):
        region = Region(
            body=[biased_site(0)],
            loop=BranchSite(address=1, behavior=LoopBehavior(trip_count=3)),
        )
        emitted = []
        region.execute(lambda pc, taken: emitted.append((pc, taken)), [0], Random(0))
        # body, backedge T, body, backedge T, body, backedge NT
        assert emitted == [(0, True), (1, True)] * 2 + [(0, True), (1, False)]

    def test_history_threads_through_execution(self):
        region = Region(body=[biased_site(0, p=1.0), biased_site(2, p=0.0)])
        history_ref = [0]
        region.execute(lambda pc, taken: None, history_ref, Random(0))
        assert history_ref[0] == 0b10

    def test_max_iterations_bounds_runaway_loops(self):
        region = Region(
            body=[biased_site(0)],
            loop=BranchSite(address=1, behavior=LoopBehavior(trip_count=4096)),
            max_iterations=5,
        )
        emitted = []
        region.execute(lambda pc, taken: emitted.append(pc), [0], Random(0))
        assert len(emitted) == 10  # 5 iterations x (body + backedge)

    def test_sync_called_on_entry(self):
        pattern = PatternBehavior([True, False, False])
        region = Region(body=[BranchSite(address=0, behavior=pattern)])
        outs = []
        for _ in range(3):
            region.execute(lambda pc, taken: outs.append(taken), [0], Random(0))
        assert outs == [True, True, True]  # phase restarts every visit


class TestProgram:
    def test_requires_regions(self):
        with pytest.raises(ValueError):
            Program(regions=[])

    def test_default_schedule_is_a_ring(self):
        program = Program(regions=[Region(body=[biased_site(i * 4)]) for i in range(3)])
        assert program.schedule == [[1], [2], [0]]

    def test_schedule_validation(self):
        regions = [Region(body=[biased_site(0)])]
        with pytest.raises(ValueError):
            Program(regions=regions, schedule=[[5]])
        with pytest.raises(ValueError):
            Program(regions=regions, schedule=[[]])
        with pytest.raises(ValueError):
            Program(regions=regions, schedule=[[0], [0]])

    def test_weights_validation(self):
        regions = [Region(body=[biased_site(0)])]
        with pytest.raises(ValueError):
            Program(regions=regions, weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            Program(regions=regions, weights=[-1.0])

    def test_run_length(self):
        program = Program(regions=[Region(body=[biased_site(0), biased_site(2)])])
        trace = program.run(length=101, seed=0)
        assert len(trace) == 101

    def test_run_deterministic(self):
        program = Program(
            regions=[Region(body=[biased_site(i * 4, p=0.7)]) for i in range(4)],
            jump_prob=0.1,
        )
        t1 = program.run(length=500, seed=9)
        t2 = program.run(length=500, seed=9)
        assert t1 == t2

    def test_different_seeds_differ(self):
        program = Program(
            regions=[Region(body=[biased_site(i * 4, p=0.5)]) for i in range(4)]
        )
        t1 = program.run(length=500, seed=1)
        t2 = program.run(length=500, seed=2)
        assert t1 != t2

    def test_schedule_cycles_deterministically(self):
        # region 0 alternates its successor 1, 2, 1, 2, ...
        regions = [Region(body=[biased_site(i * 4)]) for i in range(3)]
        program = Program(
            regions=regions, schedule=[[1, 2], [0], [0]], jump_prob=0.0, weights=[1, 0, 0]
        )
        trace = program.run(length=8, seed=0)
        assert trace.pcs.tolist() == [0, 4, 0, 8, 0, 4, 0, 8]

    def test_zero_length(self):
        program = Program(regions=[Region(body=[biased_site(0)])])
        assert len(program.run(length=0)) == 0

    def test_static_sites(self):
        program = Program(
            regions=[
                Region(
                    body=[biased_site(0)],
                    loop=BranchSite(address=1, behavior=LoopBehavior(2)),
                ),
                Region(body=[biased_site(4)]),
            ]
        )
        assert [s.address for s in program.static_sites()] == [0, 1, 4]

    def test_jump_prob_validation(self):
        with pytest.raises(ValueError):
            Program(regions=[Region(body=[biased_site(0)])], jump_prob=1.5)
