"""Unit tests for trace persistence."""

import numpy as np
import pytest

from repro.traces.io import load_npz, load_text, save_npz, save_text
from repro.traces.record import BranchTrace


@pytest.fixture
def trace():
    return BranchTrace(
        pcs=np.array([64, 68, 72, 64]),
        outcomes=np.array([True, True, False, True]),
        name="demo",
        metadata={"suite": "cint95", "profile_seed": 3},
    )


class TestNpz:
    def test_roundtrip(self, trace, tmp_path):
        path = save_npz(trace, tmp_path / "t.npz")
        loaded = load_npz(path)
        assert loaded == trace
        assert loaded.metadata == trace.metadata

    def test_extension_normalized(self, trace, tmp_path):
        path = save_npz(trace, tmp_path / "t")
        assert path.suffix == ".npz"
        assert load_npz(path) == trace

    def test_creates_parent_dirs(self, trace, tmp_path):
        path = save_npz(trace, tmp_path / "a" / "b" / "t.npz")
        assert path.exists()


class TestText:
    def test_roundtrip(self, trace, tmp_path):
        path = save_text(trace, tmp_path / "t.txt")
        loaded = load_text(path)
        assert loaded == BranchTrace(
            pcs=trace.pcs, outcomes=trace.outcomes, name="demo"
        )

    def test_metadata_header_roundtrip(self, trace, tmp_path):
        path = save_text(trace, tmp_path / "t.txt")
        assert "# meta:" in path.read_text()
        loaded = load_text(path)
        assert loaded.metadata == trace.metadata  # cache identity survives

    def test_no_metadata_no_header(self, trace, tmp_path):
        bare = BranchTrace(pcs=trace.pcs, outcomes=trace.outcomes, name="demo")
        path = save_text(bare, tmp_path / "t.txt")
        assert "# meta:" not in path.read_text()
        assert load_text(path).metadata == {}

    def test_malformed_meta_ignored(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# meta: {not json\n# meta: [1, 2]\n100 T\n")
        loaded = load_text(path)  # both bad headers skipped like comments
        assert loaded.metadata == {}
        assert loaded.pcs.tolist() == [100]

    def test_accepts_decimal_and_tokens(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# comment\n100 T\n0x10 0\n12 taken\n13 nt\n")
        t = load_text(path)
        assert t.pcs.tolist() == [100, 16, 12, 13]
        assert t.outcomes.tolist() == [True, False, True, False]

    def test_rejects_bad_outcome(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("100 X\n")
        with pytest.raises(ValueError):
            load_text(path)

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("100 T extra\n")
        with pytest.raises(ValueError):
            load_text(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("\n100 T\n\n")
        assert len(load_text(path)) == 1

    def test_name_override(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("100 T\n")
        assert load_text(path, name="zz").name == "zz"


class TestStoreInterchange:
    """npz <-> store conversion: the store keeps generated traces as
    mmap'd .npy pairs, npz stays the portable interchange format."""

    def _store(self, tmp_path):
        from repro.traces.store import TraceStore

        return TraceStore(tmp_path / "store")

    def test_import_npz(self, trace, tmp_path):
        store = self._store(tmp_path)
        npz = save_npz(trace, tmp_path / "ext.npz")
        mapped = store.import_npz(npz, seed=3)
        assert mapped == trace
        assert mapped.metadata == trace.metadata
        assert store.has(trace.name, len(trace), 3)

    def test_import_gives_read_only_views(self, trace, tmp_path):
        store = self._store(tmp_path)
        mapped = store.import_npz(save_npz(trace, tmp_path / "e.npz"), seed=3)
        with pytest.raises(ValueError):
            mapped.outcomes[0] = False

    def test_export_npz_roundtrip(self, trace, tmp_path):
        store = self._store(tmp_path)
        store.put(trace, 3)
        out = store.export_npz(trace.name, len(trace), 3, tmp_path / "out.npz")
        exported = load_npz(out)
        assert exported == trace
        assert exported.metadata == trace.metadata

    def test_export_missing_raises(self, tmp_path):
        store = self._store(tmp_path)
        with pytest.raises(FileNotFoundError):
            store.export_npz("demo", 4, 3, tmp_path / "out.npz")
