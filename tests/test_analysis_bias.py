"""Unit tests for the substream bias analysis (paper Section 4.1-4.2)."""

import numpy as np
import pytest

from repro.analysis.bias import (
    SNT,
    ST,
    WB,
    SubstreamAnalysis,
    analyze_substreams,
    classify_rate,
    counter_bias_table,
    normalized_counts,
)
from repro.core.interfaces import DetailedSimulation, SimulationResult
from repro.core.registry import make_predictor
from repro.sim.engine import run_detailed
from tests.conftest import make_toy_trace


def detailed_from(pcs, counter_ids, outcomes, mispredicted=None, num_counters=None):
    n = len(pcs)
    outcomes = np.array(outcomes, dtype=bool)
    if mispredicted is None:
        predictions = outcomes.copy()
    else:
        predictions = outcomes ^ np.array(mispredicted, dtype=bool)
    result = SimulationResult("p", "t", predictions, outcomes)
    return DetailedSimulation(
        result=result,
        counter_ids=np.array(counter_ids),
        num_counters=num_counters or (max(counter_ids) + 1),
        pcs=np.array(pcs),
    )


class TestClassifyRate:
    def test_boundaries(self):
        assert classify_rate(0.9) == ST
        assert classify_rate(0.1) == SNT
        assert classify_rate(0.89) == WB
        assert classify_rate(0.11) == WB
        assert classify_rate(1.0) == ST
        assert classify_rate(0.0) == SNT

    def test_custom_threshold(self):
        assert classify_rate(0.85, threshold=0.8) == ST

    def test_validation(self):
        with pytest.raises(ValueError):
            classify_rate(1.5)


class TestPaperTable3:
    """The worked example of the paper's Table 3."""

    @pytest.fixture
    def analysis(self):
        pcs = [0x001] * 12 + [0x005] * 20 + [0x100] * 8 + [0x150] * 10
        outcomes = (
            [True] * 11 + [False]
            + [True] + [False] * 19
            + [True] * 3 + [False] * 5
            + [True] + [False] * 9
        )
        return analyze_substreams(
            detailed_from(pcs, [0] * 50, outcomes, num_counters=1)
        )

    def test_normalized_counts(self, analysis):
        counts = normalized_counts(analysis, 0)
        assert counts[0x001] == (pytest.approx(0.24), "ST")
        assert counts[0x005] == (pytest.approx(0.40), "SNT")
        assert counts[0x100] == (pytest.approx(0.16), "WB")
        assert counts[0x150] == (pytest.approx(0.20), "SNT")

    def test_snt_is_dominant(self, analysis):
        # SNT has 60% of the normalized count vs ST's 24%
        assert analysis.counter_dominant[0] == SNT

    def test_roles(self, analysis):
        roles = dict(zip(analysis.stream_pc.tolist(), analysis.stream_role().tolist()))
        assert roles[0x005] == 0  # dominant
        assert roles[0x150] == 0
        assert roles[0x001] == 1  # non-dominant
        assert roles[0x100] == 2  # WB

    def test_bias_table_row(self, analysis):
        table = counter_bias_table(analysis)
        assert table.shape == (1, 3)
        assert table[0] == pytest.approx([0.60, 0.24, 0.16])

    def test_empty_counter_normalized_counts(self, analysis):
        assert normalized_counts(analysis, 0) != {}
        # a counter never accessed yields an empty mapping
        pcs = [1, 1]
        a2 = analyze_substreams(detailed_from(pcs, [0, 0], [True, True], num_counters=4))
        assert normalized_counts(a2, 3) == {}


class TestAnalyzeSubstreams:
    def test_streams_keyed_by_pc_and_counter(self):
        # one pc hitting two counters = two streams
        analysis = analyze_substreams(
            detailed_from([7, 7, 7, 7], [0, 1, 0, 1], [True] * 4, num_counters=2)
        )
        assert analysis.num_streams == 2

    def test_stream_totals(self):
        analysis = analyze_substreams(
            detailed_from([1, 1, 2], [0, 0, 0], [True, False, True])
        )
        totals = dict(zip(analysis.stream_pc.tolist(), analysis.stream_total.tolist()))
        assert totals == {1: 2, 2: 1}

    def test_mispredictions_attributed(self):
        analysis = analyze_substreams(
            detailed_from(
                [1, 1, 1], [0, 0, 0], [True, True, True], mispredicted=[True, False, True]
            )
        )
        assert analysis.stream_mispredicted.tolist() == [2]

    def test_access_class_maps_back(self):
        analysis = analyze_substreams(
            detailed_from([1] * 10 + [2] * 10, [0] * 20,
                          [True] * 10 + [True, False] * 5)
        )
        classes = analysis.access_class()
        assert (classes[:10] == ST).all()
        assert (classes[10:] == WB).all()

    def test_dominant_tie_breaks_to_st(self):
        # equal ST and SNT weight at a counter
        analysis = analyze_substreams(
            detailed_from([1] * 10 + [2] * 10, [0] * 20,
                          [True] * 10 + [False] * 10)
        )
        assert analysis.counter_dominant[0] == ST

    def test_unaccessed_counter_marked(self):
        analysis = analyze_substreams(
            detailed_from([1], [0], [True], num_counters=8)
        )
        assert analysis.counter_dominant[5] == -1

    def test_requires_pcs(self):
        detailed = detailed_from([1], [0], [True])
        detailed.pcs = None
        with pytest.raises(ValueError):
            analyze_substreams(detailed)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            analyze_substreams(detailed_from([1], [0], [True]), threshold=0.5)


class TestCounterBiasTable:
    def test_rows_sum_to_one(self):
        trace = make_toy_trace(length=2000)
        detailed = run_detailed(make_predictor("gshare:index=6,hist=6"), trace)
        table = counter_bias_table(analyze_substreams(detailed))
        assert np.allclose(table.sum(axis=1), 1.0)

    def test_sorted_by_wb(self):
        trace = make_toy_trace(length=2000)
        detailed = run_detailed(make_predictor("gshare:index=6,hist=6"), trace)
        table = counter_bias_table(analyze_substreams(detailed))
        assert (np.diff(table[:, 2]) >= 0).all()

    def test_unsorted_option(self):
        trace = make_toy_trace(length=500)
        detailed = run_detailed(make_predictor("gshare:index=5,hist=5"), trace)
        analysis = analyze_substreams(detailed)
        sorted_table = counter_bias_table(analysis, sort_by_wb=True)
        raw_table = counter_bias_table(analysis, sort_by_wb=False)
        assert sorted_table.shape == raw_table.shape


class TestPaperFigure5And6Property:
    def test_bimode_reduces_non_dominant_area_vs_gshare(self, small_workload):
        """The paper's central measurement (Figs 5 vs 6): at comparable
        geometry, bi-mode's direction counters see a larger dominant
        share and a smaller non-dominant share than history-indexed
        gshare."""
        gshare = run_detailed(make_predictor("gshare:index=8,hist=8"), small_workload)
        bimode = run_detailed(
            make_predictor("bimode:dir=7,hist=7,choice=7"), small_workload
        )
        g_table = counter_bias_table(analyze_substreams(gshare))
        b_table = counter_bias_table(analyze_substreams(bimode))
        assert b_table[:, 1].mean() < g_table[:, 1].mean()  # non-dominant shrinks
        assert b_table[:, 0].mean() > g_table[:, 0].mean()  # dominant grows
