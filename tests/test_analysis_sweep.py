"""Unit tests for size sweeps and the gshare.best search."""

import pytest

from repro.analysis.sweep import (
    SweepPoint,
    SweepSeries,
    best_gshare_at_size,
    bimode_spec,
    gshare_1pht_spec,
    gshare_spec,
    paper_sweep,
    sweep_series,
)
from repro.sim.runner import ResultCache
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile


@pytest.fixture(scope="module")
def tiny_suite():
    return {
        name: generate_trace(get_profile(name), length=15_000, seed=2)
        for name in ("xlisp", "compress")
    }


class TestSpecHelpers:
    def test_gshare_1pht_spec(self):
        assert gshare_1pht_spec(0.25) == "gshare:index=10,hist=10"
        assert gshare_1pht_spec(32.0) == "gshare:index=17,hist=17"

    def test_bimode_spec_halves_banks(self):
        assert bimode_spec(0.25) == "bimode:dir=9,hist=9,choice=9"

    def test_gshare_spec(self):
        assert gshare_spec(12, 7) == "gshare:index=12,hist=7"


class TestSweepPoint:
    def test_average(self):
        p = SweepPoint(spec="s", size_bytes=1024, per_benchmark={"a": 0.1, "b": 0.3})
        assert p.average == pytest.approx(0.2)
        assert p.size_kb == 1.0

    def test_empty_average(self):
        assert SweepPoint("s", 0, {}).average == 0.0


class TestSweepSeries:
    def test_points_sorted_by_size(self):
        series = sweep_series(
            "x",
            [
                ("gshare:index=12,hist=12", {"a": 0.2}),
                ("gshare:index=10,hist=10", {"a": 0.3}),
            ],
        )
        assert series.sizes_kb() == [0.25, 1.0]
        assert series.averages() == [0.3, 0.2]

    def test_benchmark_rates(self):
        series = sweep_series("x", [("gshare:index=10,hist=10", {"a": 0.3, "b": 0.1})])
        assert series.benchmark_rates("b") == [0.1]


class TestBestGshareSearch:
    def test_picks_minimum(self, tiny_suite, tmp_path):
        cache = ResultCache(tmp_path)
        spec, rates = best_gshare_at_size(
            0.25, tiny_suite, cache=cache, history_candidates=[0, 5, 10]
        )
        assert spec.startswith("gshare:index=10,hist=")
        assert set(rates) == set(tiny_suite)
        # verify it actually is the argmin over the candidates
        from repro.sim.runner import evaluate

        best_avg = sum(rates.values()) / len(rates)
        for h in (0, 5, 10):
            candidate = gshare_spec(10, h)
            avg = sum(
                evaluate(candidate, t, cache=cache) for t in tiny_suite.values()
            ) / len(tiny_suite)
            assert best_avg <= avg + 1e-12

    def test_requires_traces(self):
        with pytest.raises(ValueError):
            best_gshare_at_size(0.25, {})

    def test_out_of_range_candidates_skipped(self, tiny_suite, tmp_path):
        spec, _ = best_gshare_at_size(
            0.25, tiny_suite, cache=ResultCache(tmp_path), history_candidates=[5, 99]
        )
        assert spec == gshare_spec(10, 5)


class TestBatchedPathEquivalence:
    """The sweep's batched kernel / matrix path must be byte-identical
    to scalar-engine cells, so cached serial results mix freely."""

    def test_sweep_cells_match_scalar_engine(self, tiny_suite, tmp_path):
        from repro.core.registry import make_predictor
        from repro.sim.engine import run

        series = paper_sweep(tiny_suite, kb_points=[0.25, 0.5], cache=ResultCache(tmp_path))
        for sweep in series.values():
            for point in sweep.points:
                for bench, rate in point.per_benchmark.items():
                    scalar = run(
                        make_predictor(point.spec), tiny_suite[bench]
                    ).misprediction_rate
                    assert rate == scalar, (point.spec, bench)

    def test_preseeded_serial_cells_mix_with_batched(self, tiny_suite, tmp_path):
        from repro.core.registry import make_predictor
        from repro.sim.engine import run
        from repro.sim.runner import trace_key

        fresh = paper_sweep(tiny_suite, kb_points=[0.25], cache=ResultCache(tmp_path / "a"))

        # seed a second cache with scalar-engine results for half the cells
        seeded = ResultCache(tmp_path / "b")
        for h in (0, 2, 4, 6, 8, 10):
            spec = gshare_spec(10, h)
            for bench, trace in tiny_suite.items():
                rate = run(make_predictor(spec), trace).misprediction_rate
                seeded.put(spec, trace_key(trace), rate)
        mixed = paper_sweep(tiny_suite, kb_points=[0.25], cache=seeded)

        for label in fresh:
            for p_fresh, p_mixed in zip(fresh[label].points, mixed[label].points):
                assert p_fresh.spec == p_mixed.spec
                assert p_fresh.per_benchmark == p_mixed.per_benchmark

    def test_best_search_matches_per_spec_evaluate(self, tiny_suite, tmp_path):
        from repro.sim.runner import evaluate

        spec, rates = best_gshare_at_size(0.25, tiny_suite, cache=ResultCache(tmp_path))
        for bench, trace in tiny_suite.items():
            assert rates[bench] == evaluate(spec, trace)

    def test_no_in_range_candidates_raises(self, tiny_suite):
        with pytest.raises(ValueError, match="in-range"):
            best_gshare_at_size(0.25, tiny_suite, history_candidates=[99])


class TestPaperSweep:
    def test_three_series(self, tiny_suite, tmp_path):
        series = paper_sweep(tiny_suite, kb_points=[0.25, 1.0], cache=ResultCache(tmp_path))
        assert set(series) == {"gshare.1PHT", "gshare.best", "bi-mode"}
        for sweep in series.values():
            assert len(sweep.points) == 2

    def test_bimode_costs_1_5x_label(self, tiny_suite, tmp_path):
        series = paper_sweep(tiny_suite, kb_points=[0.25], cache=ResultCache(tmp_path))
        assert series["bi-mode"].points[0].size_kb == pytest.approx(0.375)
        assert series["gshare.1PHT"].points[0].size_kb == pytest.approx(0.25)

    def test_best_never_worse_than_1pht(self, tiny_suite, tmp_path):
        """gshare.best includes the 1PHT configuration in its search
        space, so its average can never be worse."""
        series = paper_sweep(tiny_suite, kb_points=[0.25, 0.5], cache=ResultCache(tmp_path))
        for best, one in zip(
            series["gshare.best"].points, series["gshare.1PHT"].points
        ):
            assert best.average <= one.average + 1e-12
