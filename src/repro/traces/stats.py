"""Trace statistics — the raw material of the paper's Table 2 and the
per-branch bias distribution behind its Section-4 analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.traces.record import BranchTrace

__all__ = [
    "TraceStats",
    "compute_stats",
    "per_branch_bias",
    "bias_distribution",
]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace (one row of Table 2, extended)."""

    name: str
    static_branches: int
    dynamic_branches: int
    taken_rate: float
    #: fraction of dynamic branches from static branches taken >= 90 % of the time
    strongly_taken_fraction: float
    #: fraction of dynamic branches from static branches taken <= 10 % of the time
    strongly_not_taken_fraction: float

    @property
    def strongly_biased_fraction(self) -> float:
        """Dynamic fraction from >=90 %-biased statics ([Chang94]: ~50 % on CINT92)."""
        return self.strongly_taken_fraction + self.strongly_not_taken_fraction

    @property
    def weakly_biased_fraction(self) -> float:
        return 1.0 - self.strongly_biased_fraction


def per_branch_bias(trace: BranchTrace) -> Dict[int, tuple]:
    """Per static branch: ``pc -> (dynamic_count, taken_count)``."""
    pcs = trace.pcs
    outcomes = trace.outcomes
    unique, inverse = np.unique(pcs, return_inverse=True)
    counts = np.bincount(inverse, minlength=len(unique))
    takens = np.bincount(inverse, weights=outcomes.astype(np.float64), minlength=len(unique))
    return {
        int(pc): (int(count), int(taken))
        for pc, count, taken in zip(unique.tolist(), counts.tolist(), takens.tolist())
    }


def compute_stats(trace: BranchTrace, bias_threshold: float = 0.9) -> TraceStats:
    """Table-2 style statistics plus the static-bias mix.

    ``bias_threshold`` is the paper's 90 % strong-bias boundary.
    """
    if not 0.5 <= bias_threshold <= 1.0:
        raise ValueError(f"bias_threshold must be in [0.5, 1.0], got {bias_threshold}")
    n = len(trace)
    if n == 0:
        return TraceStats(
            name=trace.name,
            static_branches=0,
            dynamic_branches=0,
            taken_rate=0.0,
            strongly_taken_fraction=0.0,
            strongly_not_taken_fraction=0.0,
        )
    bias = per_branch_bias(trace)
    strongly_taken_dyn = 0
    strongly_not_taken_dyn = 0
    for count, taken in bias.values():
        rate = taken / count
        if rate >= bias_threshold:
            strongly_taken_dyn += count
        elif rate <= 1.0 - bias_threshold:
            strongly_not_taken_dyn += count
    return TraceStats(
        name=trace.name,
        static_branches=len(bias),
        dynamic_branches=n,
        taken_rate=trace.taken_rate,
        strongly_taken_fraction=strongly_taken_dyn / n,
        strongly_not_taken_fraction=strongly_not_taken_dyn / n,
    )


def bias_distribution(trace: BranchTrace, num_bins: int = 10) -> List[float]:
    """Dynamic-weighted histogram of per-static-branch taken rates.

    ``result[i]`` is the fraction of *dynamic* branches whose static
    branch has a taken rate in ``[i/num_bins, (i+1)/num_bins)`` (last
    bin closed) — the measurement style of [Chang94].
    """
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1, got {num_bins}")
    n = len(trace)
    bins = [0] * num_bins
    if n == 0:
        return [0.0] * num_bins
    for count, taken in per_branch_bias(trace).values():
        rate = taken / count
        slot = min(int(rate * num_bins), num_bins - 1)
        bins[slot] += count
    return [b / n for b in bins]
