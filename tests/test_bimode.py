"""Unit tests for the bi-mode predictor — the paper's Section 2.2
semantics, checked against hand-worked vectors."""

import numpy as np
import pytest

from repro.core.bimode import BiModePredictor
from repro.core.counters import (
    STRONGLY_TAKEN,
    WEAKLY_NOT_TAKEN,
    WEAKLY_TAKEN,
)
from repro.sim.engine import run, run_steps
from tests.conftest import make_toy_trace


def fresh(dir_bits=4, hist=None, choice=None, **kw):
    return BiModePredictor(
        direction_index_bits=dir_bits,
        history_bits=hist,
        choice_index_bits=choice,
        **kw,
    )


class TestStructure:
    def test_bank_initialization_follows_paper_footnote_2(self):
        p = fresh()
        assert all(s == WEAKLY_TAKEN for s in p.taken_bank.states)
        assert all(s == WEAKLY_NOT_TAKEN for s in p.not_taken_bank.states)
        assert all(s == WEAKLY_TAKEN for s in p.choice.states)

    def test_size_bits_counts_all_three_tables(self):
        p = fresh(dir_bits=7, choice=6)
        # 2 * 128 + 64 counters, 2 bits each
        assert p.size_bits() == (256 + 64) * 2

    def test_default_choice_size_equals_bank_size(self):
        p = fresh(dir_bits=5)
        assert p.choice.size == p.bank_size == 32

    def test_default_history_is_full_index(self):
        assert fresh(dir_bits=6).history_bits == 6

    def test_cost_is_1_5x_equivalent_gshare(self):
        from repro.predictors.gshare import GSharePredictor

        bimode = fresh(dir_bits=9)
        gshare = GSharePredictor(index_bits=10)
        assert bimode.size_bits() == pytest.approx(1.5 * gshare.size_bits())

    def test_rejects_history_longer_than_index(self):
        with pytest.raises(ValueError):
            fresh(dir_bits=4, hist=5)

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            BiModePredictor(direction_index_bits=-1)
        with pytest.raises(ValueError):
            fresh(choice=-1)

    def test_name_mentions_configuration(self):
        name = fresh(dir_bits=7, hist=5, choice=6).name
        assert "2^7" in name and "hist=5" in name and "2^6" in name


class TestPredictionSemantics:
    def test_initial_prediction_follows_choice_bias(self):
        # choice starts weakly-taken -> taken bank -> weakly taken -> True
        assert fresh().predict(pc=0) is True

    def test_choice_selects_not_taken_bank(self):
        p = fresh()
        # train the choice counter at pc 0 toward not-taken
        p.choice.update(0, False)
        p.choice.update(0, False)
        assert p.predict(0) is False  # NT bank starts weakly-not-taken

    def test_direction_counter_overrides_choice(self):
        p = fresh(hist=0)
        # choice still says taken, but the taken-bank counter for pc 3
        # has learned not-taken: the direction predictor wins
        p.taken_bank.update(3, False)
        p.taken_bank.update(3, False)
        assert p.predict(3) is False

    def test_direction_index_uses_history_xor(self):
        p = fresh(dir_bits=4, hist=4)
        p.ghr.push(True)  # history = 0b0001
        p.taken_bank.update(5 ^ 1, False)
        p.taken_bank.update(5 ^ 1, False)
        assert p.predict(5) is False
        assert p.predict(4) is True  # 4 ^ 1 = 5: untouched entry


class TestUpdateSemantics:
    def test_only_selected_bank_is_updated(self):
        p = fresh(hist=0)
        p.update(pc=2, taken=True)
        assert p.taken_bank.states[2] == STRONGLY_TAKEN  # selected, trained
        assert p.not_taken_bank.states[2] == WEAKLY_NOT_TAKEN  # untouched

    def test_full_update_ablation_trains_both_banks(self):
        p = fresh(hist=0, full_update=True)
        p.update(pc=2, taken=True)
        assert p.taken_bank.states[2] == STRONGLY_TAKEN
        assert p.not_taken_bank.states[2] == WEAKLY_TAKEN  # also trained

    def test_choice_updated_on_agreement(self):
        p = fresh(hist=0)
        p.update(pc=1, taken=True)
        assert p.choice.states[1] == STRONGLY_TAKEN

    def test_choice_updated_when_both_wrong(self):
        # choice says taken, direction counter predicts taken, outcome
        # not-taken: no exception, choice trains toward not-taken
        p = fresh(hist=0)
        p.update(pc=1, taken=False)
        assert p.choice.states[1] == WEAKLY_NOT_TAKEN

    def test_choice_not_updated_on_partial_update_exception(self):
        # Paper: "the choice predictor is always updated with the branch
        # outcome, except that when the choice is opposite to the branch
        # outcome but the selected counter ... makes a correct final
        # prediction."
        p = fresh(hist=0)
        # put the taken-bank entry for pc 1 into not-taken state
        p.taken_bank.fill([0] * p.bank_size)
        before = p.choice.states[1]
        p.update(pc=1, taken=False)  # choice=taken (wrong), final=NT (right)
        assert p.choice.states[1] == before  # untouched
        # and the selected (taken-bank!) counter still trained
        assert p.taken_bank.states[1] == 0  # saturated low already

    def test_ghr_records_outcome(self):
        p = fresh(dir_bits=4, hist=4)
        p.update(0, True)
        p.update(0, False)
        assert p.ghr.value == 0b10

    def test_reset_restores_power_on_state(self):
        p = fresh()
        for pc in range(10):
            p.update(pc, pc % 2 == 0)
        p.reset()
        q = fresh()
        assert p.taken_bank.states == q.taken_bank.states
        assert p.not_taken_bank.states == q.not_taken_bank.states
        assert p.choice.states == q.choice.states
        assert p.ghr.value == 0


class TestDynamicBehaviour:
    def test_learns_a_strongly_biased_branch(self):
        p = fresh()
        hits = sum(p.predict_and_update(12, True) for _ in range(100))
        assert hits >= 98

    def test_separates_opposite_biases_that_alias(self):
        """Two branches with identical direction-bank indices but
        opposite biases: the choice predictor routes them to different
        banks, so neither disturbs the other (the de-aliasing story)."""
        p = fresh(dir_bits=4, hist=0, choice=8)
        taken_pc = 0x10 | 0x3  # low 4 bits 0b0011
        not_taken_pc = 0x20 | 0x3  # same direction index, different choice slot
        misses = 0
        for _ in range(200):
            misses += p.predict_and_update(taken_pc, True) is not True
            misses += p.predict_and_update(not_taken_pc, False) is not False
        assert misses <= 4  # only the cold start

    def test_gshare_suffers_on_the_same_aliasing_pattern(self):
        """Sanity: plain gshare with the same direction-table geometry
        oscillates on the pattern above."""
        from repro.predictors.gshare import GSharePredictor

        g = GSharePredictor(index_bits=4, history_bits=0)
        misses = 0
        for _ in range(200):
            misses += g.predict_and_update(0x13, True) is not True
            misses += g.predict_and_update(0x23, False) is not False
        assert misses > 100  # destructive aliasing

    def test_batch_equals_step(self):
        trace = make_toy_trace(length=1500, seed=11)
        for kwargs in (
            {},
            {"hist": 3},
            {"choice": 3},
            {"full_update": True},
            {"choice_uses_history": True},
        ):
            batch = run(fresh(dir_bits=6, **kwargs), trace)
            steps = run_steps(fresh(dir_bits=6, **kwargs), trace)
            assert np.array_equal(batch.predictions, steps.predictions), kwargs

    def test_warm_start_batch_matches_uninterrupted_run(self):
        trace = make_toy_trace(length=600)
        full = run(fresh(), trace).predictions
        p = fresh()
        a = run(p, trace[:300]).predictions
        b = run(p, trace[300:], reset=False).predictions
        assert np.array_equal(np.concatenate([a, b]), full)

    def test_simulate_detailed_counter_ids_identify_bank(self):
        p = fresh(dir_bits=4)
        trace = make_toy_trace(length=300)
        detailed = p.simulate_detailed(trace)
        assert detailed.num_counters == 2 * p.bank_size
        assert detailed.counter_ids.min() >= 0
        assert detailed.counter_ids.max() < 2 * p.bank_size
        # both banks should be exercised by a mixed workload
        assert (detailed.counter_ids < p.bank_size).any()
        assert (detailed.counter_ids >= p.bank_size).any()

    def test_deterministic(self):
        trace = make_toy_trace(length=800)
        r1 = run(fresh(), trace)
        r2 = run(fresh(), trace)
        assert np.array_equal(r1.predictions, r2.predictions)
