"""Shared fixtures: small deterministic traces and predictor specs.

Also registers hypothesis profiles: ``dev`` (the default, fast) and
``ci`` (derandomized with a fixed seed and a larger example budget, for
the dedicated CI fuzzing job).  Select with ``HYPOTHESIS_PROFILE=ci``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.traces.record import BranchTrace
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile

settings.register_profile(
    "ci",
    max_examples=200,
    derandomize=True,  # fixed seed: CI failures reproduce locally
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", settings.default)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


#: Every registered predictor spec exercised by the equivalence and
#: smoke tests.  Kept small so the whole matrix stays fast.
ALL_SPECS = [
    "always-taken",
    "always-not-taken",
    "btfnt",
    "bimodal:index=8",
    "bimodal:index=6,bits=3",
    "gshare:index=8,hist=8",
    "gshare:index=8,hist=3",
    "gshare:index=8,hist=0",
    "gag:hist=8",
    "gas:hist=5,select=3",
    "gselect:hist=4,addr=4",
    "pag:hist=6,bht=6",
    "pas:hist=4,select=3,bht=5",
    "bimode:dir=7,hist=7,choice=7",
    "bimode:dir=7,hist=4,choice=6",
    "bimode:dir=7,hist=7,choice=7,full_update=1",
    "bimode:dir=7,hist=7,choice=7,choice_hist=1",
    "agree:index=8,hist=8",
    "gskew:bank=7,hist=7",
    "gskew:bank=7,hist=7,update=total",
    "yags:choice=8,cache=6,hist=6,tag=6",
    "tournament:index=8,meta=8",
    "trimode:dir=7,hist=7,choice=7",
    "trimode:dir=7,hist=3,choice=5",
    "biasfilter:table=8,run=2,sub_index=8,sub_hist=8",
    "gap:hist=4,addr=4",
    "pap:hist=3,addr=3,bht=4",
    "perceptron:index=6,hist=8",
]


def make_toy_trace(length: int = 2000, seed: int = 7, num_branches: int = 24) -> BranchTrace:
    """A quick random trace (not workload-realistic; for mechanics tests)."""
    rng = np.random.default_rng(seed)
    pcs = rng.integers(0, num_branches, size=length) * 4 + 64
    # mix of biased and alternating branches so every predictor has work
    outcomes = np.empty(length, dtype=bool)
    for b in range(num_branches):
        mask = pcs == b * 4 + 64
        n = int(mask.sum())
        if b % 3 == 0:
            outcomes[mask] = rng.random(n) < 0.95
        elif b % 3 == 1:
            outcomes[mask] = rng.random(n) < 0.05
        else:
            outcomes[mask] = (np.arange(n) % 2).astype(bool)
    return BranchTrace(pcs=pcs, outcomes=outcomes, name="toy")


@pytest.fixture(scope="session")
def toy_trace() -> BranchTrace:
    return make_toy_trace()


@pytest.fixture(scope="session")
def small_workload() -> BranchTrace:
    """A short real workload trace (xlisp profile, 20 K branches)."""
    return generate_trace(get_profile("xlisp"), length=20_000, seed=3)


@pytest.fixture(scope="session")
def aliasing_workload() -> BranchTrace:
    """A trace with a large static footprint (gcc profile, 30 K branches)."""
    return generate_trace(get_profile("gcc"), length=30_000, seed=3)
